// Package hashtable implements the concurrent linear-probing hash table the
// paper's SCC algorithm uses to store reachability sets (§5, "Techniques for
// overlapping searches"): (vertex, center) pairs are hashed *by vertex only*,
// so all pairs of one vertex lie on the same probe sequence. That makes
// enumerating a vertex's centers a single linear probe, and keeps multiple
// pairs of one vertex in the same cache lines. Insertions are lock-free
// CAS; the table never deletes, and it is grown between rounds (never
// concurrently with operations) after upper-bounding the round's insertions.
package hashtable

import (
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/xrand"
)

const empty = ^uint64(0)

// Table stores a set of (vertex, label) pairs, both uint32. The pair
// (^0, ^0) is reserved.
type Table struct {
	sched *parallel.Scheduler
	slots []uint64
	mask  uint64
	count atomic.Int64
}

// New returns a table with capacity for at least capacity pairs at a load
// factor of at most 3/4. Parallel maintenance (clearing, rehashing) runs on
// scheduler s.
func New(s *parallel.Scheduler, capacity int) *Table {
	size := 16
	for size*3/4 < capacity {
		size <<= 1
	}
	t := &Table{sched: s, slots: make([]uint64, size), mask: uint64(size - 1)}
	clearSlots(s, t.slots)
	return t
}

func clearSlots(sched *parallel.Scheduler, s []uint64) {
	sched.ForRange(len(s), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = empty
		}
	})
}

func pack(v, label uint32) uint64 { return uint64(v)<<32 | uint64(label) }

func (t *Table) home(v uint32) uint64 {
	return xrand.Hash64(0x5bd1e9955bd1e995, uint64(v)) & t.mask
}

// Len returns the number of pairs currently stored.
func (t *Table) Len() int { return int(t.count.Load()) }

// Cap returns the number of slots.
func (t *Table) Cap() int { return len(t.slots) }

// Insert adds the pair (v, label), returning true if it was not already
// present. Safe for concurrent use with other Inserts and reads.
func (t *Table) Insert(v, label uint32) bool {
	key := pack(v, label)
	i := t.home(v)
	for {
		cur := atomic.LoadUint64(&t.slots[i])
		if cur == key {
			return false
		}
		if cur == empty {
			if atomic.CompareAndSwapUint64(&t.slots[i], empty, key) {
				t.count.Add(1)
				return true
			}
			continue // lost the race; re-read this slot
		}
		i = (i + 1) & t.mask
	}
}

// Contains reports whether the pair (v, label) is present.
func (t *Table) Contains(v, label uint32) bool {
	key := pack(v, label)
	for i := t.home(v); ; i = (i + 1) & t.mask {
		cur := atomic.LoadUint64(&t.slots[i])
		if cur == key {
			return true
		}
		if cur == empty {
			return false
		}
	}
}

// ForEachOf calls f for each label stored with vertex v, stopping if f
// returns false. With vertex-only hashing this is a single probe run ending
// at the first empty slot. Concurrent insertions may or may not be seen.
func (t *Table) ForEachOf(v uint32, f func(label uint32) bool) {
	for i := t.home(v); ; i = (i + 1) & t.mask {
		cur := atomic.LoadUint64(&t.slots[i])
		if cur == empty {
			return
		}
		if uint32(cur>>32) == v {
			if !f(uint32(cur)) {
				return
			}
		}
	}
}

// CountOf returns the number of labels stored with v.
func (t *Table) CountOf(v uint32) int {
	c := 0
	t.ForEachOf(v, func(uint32) bool { c++; return true })
	return c
}

// Reserve ensures the table can absorb `extra` additional pairs without
// exceeding its load factor, growing and rehashing if needed. It must not
// run concurrently with any other operation; SCC calls it between rounds
// after upper-bounding the round's insertions.
func (t *Table) Reserve(extra int) {
	need := t.Len() + extra
	if need <= len(t.slots)*3/4 {
		return
	}
	size := len(t.slots)
	for size*3/4 < need {
		size <<= 1
	}
	old := t.slots
	t.slots = make([]uint64, size)
	t.mask = uint64(size - 1)
	clearSlots(t.sched, t.slots)
	t.count.Store(0)
	t.sched.ForRange(len(old), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if old[i] != empty {
				t.Insert(uint32(old[i]>>32), uint32(old[i]))
			}
		}
	})
}

// Entries returns all stored pairs as (vertex, label) tuples packed
// v<<32|label, in unspecified order.
func (t *Table) Entries() []uint64 {
	out := make([]uint64, 0, t.Len())
	for _, s := range t.slots {
		if s != empty {
			out = append(out, s)
		}
	}
	return out
}

package hashtable

import (
	"slices"
	"testing"

	"repro/internal/parallel"
)

func TestInsertContains(t *testing.T) {
	tb := New(parallel.Default, 100)
	if !tb.Insert(3, 7) {
		t.Fatal("first insert returned false")
	}
	if tb.Insert(3, 7) {
		t.Fatal("duplicate insert returned true")
	}
	if !tb.Contains(3, 7) || tb.Contains(3, 8) || tb.Contains(4, 7) {
		t.Fatal("Contains wrong")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestForEachOfEnumeratesAllLabels(t *testing.T) {
	tb := New(parallel.Default, 1000)
	for l := uint32(0); l < 20; l++ {
		tb.Insert(42, l)
		tb.Insert(43, l+100)
	}
	var got []uint32
	tb.ForEachOf(42, func(l uint32) bool { got = append(got, l); return true })
	slices.Sort(got)
	if len(got) != 20 {
		t.Fatalf("got %d labels", len(got))
	}
	for i, l := range got {
		if l != uint32(i) {
			t.Fatalf("labels = %v", got)
		}
	}
	if tb.CountOf(43) != 20 || tb.CountOf(44) != 0 {
		t.Fatal("CountOf wrong")
	}
}

func TestForEachOfEarlyStop(t *testing.T) {
	tb := New(parallel.Default, 100)
	for l := uint32(0); l < 10; l++ {
		tb.Insert(1, l)
	}
	seen := 0
	tb.ForEachOf(1, func(l uint32) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Fatalf("early stop saw %d", seen)
	}
}

func TestConcurrentInsertsExactCount(t *testing.T) {
	tb := New(parallel.Default, 1<<16)
	n := 50000
	// Every pair inserted twice from different positions: exactly n unique.
	parallel.For(2*n, 64, func(i int) {
		j := i % n
		tb.Insert(uint32(j%997), uint32(j))
	})
	if tb.Len() != n {
		t.Fatalf("Len = %d want %d", tb.Len(), n)
	}
	for j := 0; j < n; j++ {
		if !tb.Contains(uint32(j%997), uint32(j)) {
			t.Fatalf("missing pair %d", j)
		}
	}
}

func TestReserveGrowsAndPreserves(t *testing.T) {
	tb := New(parallel.Default, 16)
	for i := uint32(0); i < 10; i++ {
		tb.Insert(i, i*i)
	}
	capBefore := tb.Cap()
	tb.Reserve(100000)
	if tb.Cap() <= capBefore {
		t.Fatal("Reserve did not grow")
	}
	if tb.Len() != 10 {
		t.Fatalf("Len after grow = %d", tb.Len())
	}
	for i := uint32(0); i < 10; i++ {
		if !tb.Contains(i, i*i) {
			t.Fatalf("lost pair %d after grow", i)
		}
	}
	// Small reserve within capacity is a no-op.
	capNow := tb.Cap()
	tb.Reserve(1)
	if tb.Cap() != capNow {
		t.Fatal("unneeded Reserve changed capacity")
	}
}

func TestEntries(t *testing.T) {
	tb := New(parallel.Default, 64)
	tb.Insert(5, 6)
	tb.Insert(7, 8)
	e := tb.Entries()
	if len(e) != 2 {
		t.Fatalf("Entries len = %d", len(e))
	}
	seen := map[uint64]bool{}
	for _, p := range e {
		seen[p] = true
	}
	if !seen[5<<32|6] || !seen[7<<32|8] {
		t.Fatalf("Entries = %v", e)
	}
}

func TestHeavyCollisionVertex(t *testing.T) {
	// All labels on one vertex: the probe run must stay correct as it wraps.
	tb := New(parallel.Default, 64)
	for l := uint32(0); l < 40; l++ {
		tb.Insert(9, l)
	}
	if tb.CountOf(9) != 40 {
		t.Fatalf("CountOf = %d", tb.CountOf(9))
	}
}

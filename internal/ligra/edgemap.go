package ligra

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prims"
)

// Update is edgeMap's F: applied to edge (s, d) with weight w; returning true
// adds d to the output subset. When the sparse direction is used, Update may
// be invoked concurrently for the same destination, so implementations must
// both side-effect atomically and guarantee that at most one invocation per
// destination returns true (all of the paper's algorithms do this with a
// test-and-set on a per-vertex flag).
type Update func(s, d uint32, w int32) bool

// Cond is edgeMap's C: destinations with Cond(d) == false are skipped, and
// the dense direction stops examining d's in-edges once Cond(d) turns false
// (the paper's sequential early-exit dense optimization).
type Cond func(d uint32) bool

// Opts tunes an EdgeMap call.
type Opts struct {
	// DenseThreshold is the denominator of Ligra's direction heuristic: use
	// the dense direction when |U| + sum of out-degrees > m/DenseThreshold.
	// 0 means the Ligra default of 20.
	DenseThreshold int
	// NoDense forces the sparse direction (used e.g. by wBFS until its
	// frontiers grow, and to compare the two sparse variants in Table 6).
	NoDense bool
	// NoBlocked uses the flat sparse traversal (one output slot per edge)
	// instead of edgeMapBlocked. The paper's Table 6 measures this ablation
	// on wBFS.
	NoBlocked bool
	// NoOutput skips building the output subset; EdgeMap returns Empty.
	NoOutput bool
}

// none marks an unfilled slot of the flat sparse traversal's output array.
const none = ^uint32(0)

// Traffic tallies the words written by the sparse traversals, the memory
// stream Table 6 observes shrinking under edgeMapBlocked. It is only
// approximate (allocation and filter passes are excluded) but both variants
// are counted the same way.
var Traffic atomic.Int64

// EdgeMap is Ligra's edgeMap (§3): it applies update to every edge (u, v)
// with u in frontier and cond(v) true, and returns the subset of
// destinations for which update returned true. The direction (sparse push
// vs. dense pull over in-edges) is chosen by frontier size as in Ligra.
func EdgeMap(s *parallel.Scheduler, g graph.Graph, frontier VertexSubset, update Update, cond Cond, opt Opts) VertexSubset {
	n := g.N()
	if frontier.Size() == 0 {
		return Empty(n)
	}
	threshold := opt.DenseThreshold
	if threshold <= 0 {
		threshold = 20
	}
	// The direction heuristic needs the frontier's degree sum, not its
	// member list: when the frontier is already dense, summing over the
	// flags avoids materializing the sparse form (a pack allocating and
	// compacting O(n) words) that the dense direction would then never
	// read. The sparse ids are produced only once the sparse direction is
	// actually chosen.
	var ids []uint32
	var degSum int
	if frontier.IsDense() {
		flags := frontier.Dense(s)
		degSum = prims.MapReduce(s, n, 0,
			func(i int) int {
				if flags[i] {
					return g.OutDeg(uint32(i))
				}
				return 0
			},
			func(a, b int) int { return a + b })
	} else {
		ids = frontier.Sparse(s)
		degSum = prims.MapReduce(s, len(ids), 0,
			func(i int) int { return g.OutDeg(ids[i]) },
			func(a, b int) int { return a + b })
	}
	if !opt.NoDense && frontier.Size()+degSum > g.M()/threshold {
		return edgeMapDense(s, g, frontier, update, cond, opt)
	}
	if ids == nil {
		ids = frontier.Sparse(s)
	}
	if opt.NoBlocked {
		return edgeMapSparse(s, g, ids, degSum, update, cond, opt)
	}
	return edgeMapBlocked(s, g, ids, degSum, update, cond, opt)
}

// edgeMapDense is the pull direction: every vertex with cond(v) scans its
// in-edges sequentially, applying update for in-neighbors on the frontier,
// and stops early once cond(v) becomes false. O(sum in-degrees examined)
// work; depth O(max in-degree) for the early-exit variant, as the paper
// notes.
func edgeMapDense(s *parallel.Scheduler, g graph.Graph, frontier VertexSubset, update Update, cond Cond, opt Opts) VertexSubset {
	n := g.N()
	inFlags := frontier.Dense(s)
	var outFlags []bool
	if !opt.NoOutput {
		outFlags = make([]bool, n)
	}
	var added atomic.Int64
	s.ForRange(n, 256, func(lo, hi int) {
		local := int64(0)
		for v := lo; v < hi; v++ {
			d := uint32(v)
			if !cond(d) {
				continue
			}
			g.InNgh(d, func(u uint32, w int32) bool {
				if inFlags[u] && update(u, d, w) {
					if outFlags != nil && !outFlags[d] {
						outFlags[d] = true
						local++
					}
				}
				return cond(d)
			})
		}
		added.Add(local)
	})
	if opt.NoOutput {
		return Empty(n)
	}
	return FromDense(s, outFlags, int(added.Load()))
}

// edgeMapSparse is the standard push direction: one output slot per incident
// edge, filled with the destination when update succeeds, then filtered.
func edgeMapSparse(s *parallel.Scheduler, g graph.Graph, ids []uint32, degSum int, update Update, cond Cond, opt Opts) VertexSubset {
	n := g.N()
	offsets := make([]int64, len(ids))
	prims.Scan(s, degreesOf(s, g, ids), offsets)
	out := make([]uint32, degSum)
	s.For(len(ids), 32, func(i int) {
		u := ids[i]
		o := offsets[i]
		written := int64(0)
		g.OutNgh(u, func(v uint32, w int32) bool {
			if cond(v) && update(u, v, w) {
				out[o] = v
			} else {
				out[o] = none
			}
			o++
			written++
			return true
		})
		Traffic.Add(written)
	})
	if opt.NoOutput {
		return Empty(n)
	}
	kept := prims.Filter(s, out, func(v uint32) bool { return v != none })
	return FromSparse(n, kept)
}

// edgeMapBlocked is Algorithm 15: the edges incident to the frontier are
// split into fixed-size logical blocks; each block packs its live
// destinations compactly, so the number of words written is proportional to
// the output size rather than to the frontier's degree sum.
const emBlockSize = 4096

func edgeMapBlocked(s *parallel.Scheduler, g graph.Graph, ids []uint32, degSum int, update Update, cond Cond, opt Opts) VertexSubset {
	n := g.N()
	if degSum == 0 {
		return Empty(n)
	}
	degs := degreesOf(s, g, ids)
	offsets := make([]int64, len(ids))
	prims.Scan(s, degs, offsets)
	nblocks := (degSum + emBlockSize - 1) / emBlockSize
	// B[b] = index of the frontier vertex containing edge b*emBlockSize.
	starts := make([]int, nblocks)
	s.For(nblocks, 64, func(b int) {
		starts[b] = prims.SearchSorted64(offsets, int64(b*emBlockSize)+1) - 1
	})
	inter := make([]uint32, degSum)
	counts := make([]int, nblocks)
	s.For(nblocks, 1, func(b int) {
		edgeLo := b * emBlockSize
		edgeHi := edgeLo + emBlockSize
		if edgeHi > degSum {
			edgeHi = degSum
		}
		o := edgeLo
		for i := starts[b]; i < len(ids) && int(offsets[i]) < edgeHi; i++ {
			u := ids[i]
			vLo := edgeLo - int(offsets[i])
			if vLo < 0 {
				vLo = 0
			}
			vHi := edgeHi - int(offsets[i])
			if d := int(degs[i]); vHi > d {
				vHi = d
			}
			g.OutRange(u, vLo, vHi, func(v uint32, w int32) bool {
				if cond(v) && update(u, v, w) {
					inter[o] = v
					o++
				}
				return true
			})
		}
		counts[b] = o - edgeLo
		Traffic.Add(int64(counts[b]))
	})
	if opt.NoOutput {
		return Empty(n)
	}
	blockOff := make([]int, nblocks)
	total := prims.Scan(s, counts, blockOff)
	result := make([]uint32, total)
	s.For(nblocks, 64, func(b int) {
		copy(result[blockOff[b]:blockOff[b]+counts[b]], inter[b*emBlockSize:b*emBlockSize+counts[b]])
	})
	return FromSparse(n, result)
}

func degreesOf(s *parallel.Scheduler, g graph.Graph, ids []uint32) []int64 {
	degs := make([]int64, len(ids))
	s.ForRange(len(ids), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			degs[i] = int64(g.OutDeg(ids[i]))
		}
	})
	return degs
}

package ligra

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/gen"
	"repro/internal/parallel"
)

// EdgeMap must behave identically over the compressed representation,
// including the blocked sparse path that uses OutRange to split high-degree
// compressed vertices across logical blocks.

func TestEdgeMapModesAgreeOnCompressed(t *testing.T) {
	csr := gen.BuildRMAT(parallel.Default, 10, 10, true, false, 21)
	cg := compress.FromCSR(parallel.Default, csr, 16) // small blocks exercise multi-block vertices
	base := bfsLevels(csr, 0, Opts{NoDense: true, NoBlocked: true})
	for name, opt := range map[string]Opts{
		"blocked": {NoDense: true},
		"flat":    {NoDense: true, NoBlocked: true},
		"auto":    {},
		"dense":   {DenseThreshold: 1 << 30},
	} {
		got := bfsLevels(cg, 0, opt)
		for v := range base {
			if got[v] != base[v] {
				t.Fatalf("%s on compressed: level[%d] = %d want %d", name, v, got[v], base[v])
			}
		}
	}
}

func TestTrafficCounterShrinksWithBlocked(t *testing.T) {
	csr := gen.BuildRMAT(parallel.Default, 12, 10, true, true, 22)
	run := func(opt Opts) int64 {
		Traffic.Store(0)
		bfsLevels(csr, 0, opt)
		return Traffic.Load()
	}
	flat := run(Opts{NoDense: true, NoBlocked: true})
	blocked := run(Opts{NoDense: true})
	if flat == 0 || blocked == 0 {
		t.Fatalf("counters not recording: flat=%d blocked=%d", flat, blocked)
	}
	// Flat writes one word per examined edge; blocked writes only live
	// destinations, which is strictly fewer on a BFS (each vertex acquired
	// once).
	if blocked >= flat {
		t.Fatalf("blocked wrote %d words, flat %d; expected fewer", blocked, flat)
	}
}

package ligra

import (
	"slices"
	"testing"

	"repro/internal/atomics"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func TestVertexSubsetBasics(t *testing.T) {
	s := Empty(10)
	if s.Size() != 0 || !s.IsEmpty() {
		t.Fatal("Empty not empty")
	}
	s = Single(10, 3)
	if s.Size() != 1 || !s.Contains(3) || s.Contains(4) {
		t.Fatal("Single broken")
	}
	s = FromSparse(10, []uint32{1, 5, 9})
	d := s.Dense(parallel.Default)
	if !d[1] || !d[5] || !d[9] || d[0] {
		t.Fatal("Dense conversion broken")
	}
	flags := make([]bool, 10)
	flags[2], flags[7] = true, true
	s = FromDense(parallel.Default, flags, -1)
	if s.Size() != 2 {
		t.Fatalf("FromDense recount = %d", s.Size())
	}
	sp := s.Sparse(parallel.Default)
	slices.Sort(sp)
	if !slices.Equal(sp, []uint32{2, 7}) {
		t.Fatalf("Sparse conversion = %v", sp)
	}
	all := All(parallel.Default, 5)
	if all.Size() != 5 || !all.Contains(4) {
		t.Fatal("All broken")
	}
}

func TestVertexMapAndFilter(t *testing.T) {
	s := All(parallel.Default, 100)
	var count [100]uint32
	VertexMap(parallel.Default, s, func(v uint32) { atomics.FetchAndAdd32(&count[v], 1) })
	for v, c := range count {
		if c != 1 {
			t.Fatalf("vertex %d mapped %d times", v, c)
		}
	}
	f := VertexFilter(parallel.Default, s, func(v uint32) bool { return v%10 == 0 })
	if f.Size() != 10 {
		t.Fatalf("filter size = %d", f.Size())
	}
}

// bfsLevels runs a BFS using EdgeMap under the given options and returns the
// level of each vertex (^0 if unreachable). Used to cross-check all edgeMap
// modes against each other.
func bfsLevels(g graph.Graph, src uint32, opt Opts) []uint32 {
	n := g.N()
	const inf = ^uint32(0)
	level := make([]uint32, n)
	visited := make([]uint32, n)
	for i := range level {
		level[i] = inf
	}
	level[src] = 0
	visited[src] = 1
	frontier := Single(n, src)
	round := uint32(0)
	for frontier.Size() > 0 {
		round++
		r := round
		frontier = EdgeMap(parallel.Default, g, frontier,
			func(s, d uint32, w int32) bool {
				if atomics.TestAndSet(&visited[d]) {
					level[d] = r
					return true
				}
				return false
			},
			func(d uint32) bool { return atomics.Load32(&visited[d]) == 0 },
			opt)
	}
	return level
}

func TestEdgeMapModesAgree(t *testing.T) {
	graphs := map[string]graph.Graph{
		"rmat":  gen.BuildRMAT(parallel.Default, 10, 8, true, false, 5),
		"torus": gen.BuildTorus3D(parallel.Default, 7, false, 5),
		"er":    gen.BuildErdosRenyi(parallel.Default, 2000, 8000, true, false, 5),
	}
	for name, g := range graphs {
		base := bfsLevels(g, 0, Opts{NoDense: true, NoBlocked: true}) // flat sparse only
		blocked := bfsLevels(g, 0, Opts{NoDense: true})               // blocked sparse only
		auto := bfsLevels(g, 0, Opts{})                               // direction-optimized
		denseish := bfsLevels(g, 0, Opts{DenseThreshold: 1000000})    // dense-eager
		for v := range base {
			if blocked[v] != base[v] {
				t.Fatalf("%s: blocked level[%d] = %d want %d", name, v, blocked[v], base[v])
			}
			if auto[v] != base[v] {
				t.Fatalf("%s: auto level[%d] = %d want %d", name, v, auto[v], base[v])
			}
			if denseish[v] != base[v] {
				t.Fatalf("%s: dense level[%d] = %d want %d", name, v, denseish[v], base[v])
			}
		}
	}
}

func TestEdgeMapDirectedUsesInEdgesForDense(t *testing.T) {
	// Directed path 0->1->2->3; dense pull must still follow out-direction
	// semantics via in-edges.
	el := &graph.EdgeList{N: 4, U: []uint32{0, 1, 2}, V: []uint32{1, 2, 3}}
	g := graph.FromEdgeList(parallel.Default, 4, el, graph.BuildOptions{})
	lv := bfsLevels(g, 0, Opts{DenseThreshold: 1 << 30})
	want := []uint32{0, 1, 2, 3}
	if !slices.Equal(lv, want) {
		t.Fatalf("levels = %v", lv)
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := gen.BuildTorus3D(parallel.Default, 3, false, 1)
	out := EdgeMap(parallel.Default, g, Empty(g.N()),
		func(s, d uint32, w int32) bool { return true },
		func(d uint32) bool { return true }, Opts{})
	if out.Size() != 0 {
		t.Fatal("empty frontier produced output")
	}
}

func TestEdgeMapNoOutput(t *testing.T) {
	g := gen.BuildTorus3D(parallel.Default, 3, false, 1)
	touched := make([]uint32, g.N())
	out := EdgeMap(parallel.Default, g, Single(g.N(), 0),
		func(s, d uint32, w int32) bool {
			atomics.FetchAndAdd32(&touched[d], 1)
			return true
		},
		func(d uint32) bool { return true },
		Opts{NoOutput: true, NoDense: true})
	if out.Size() != 0 {
		t.Fatal("NoOutput returned a subset")
	}
	sum := uint32(0)
	for _, c := range touched {
		sum += c
	}
	if sum != 6 {
		t.Fatalf("update applied %d times, want 6", sum)
	}
}

func TestEdgeMapWeightsArriveAtUpdate(t *testing.T) {
	el := &graph.EdgeList{N: 3, U: []uint32{0, 0}, V: []uint32{1, 2}, W: []int32{7, 9}}
	g := graph.FromEdgeList(parallel.Default, 3, el, graph.BuildOptions{})
	var w1, w2 int32
	EdgeMap(parallel.Default, g, Single(3, 0),
		func(s, d uint32, w int32) bool {
			if d == 1 {
				w1 = w
			} else {
				w2 = w
			}
			return false
		},
		func(d uint32) bool { return true }, Opts{NoDense: true})
	if w1 != 7 || w2 != 9 {
		t.Fatalf("weights %d %d", w1, w2)
	}
}

func TestEdgeMapCondSkips(t *testing.T) {
	g := gen.BuildTorus3D(parallel.Default, 4, false, 1)
	out := EdgeMap(parallel.Default, g, Single(g.N(), 0),
		func(s, d uint32, w int32) bool { return true },
		func(d uint32) bool { return false }, Opts{})
	if out.Size() != 0 {
		t.Fatal("cond=false still produced output")
	}
}

func TestEdgeMapBlockedHighDegreeSplit(t *testing.T) {
	// A star with degree far above the block size exercises the multi-block
	// single-vertex path of edgeMapBlocked.
	n := 3 * emBlockSize
	el := gen.Star(n)
	g := graph.FromEdgeList(parallel.Default, n, el, graph.BuildOptions{Symmetrize: true})
	visited := make([]uint32, n)
	visited[0] = 1
	out := EdgeMap(parallel.Default, g, Single(n, 0),
		func(s, d uint32, w int32) bool { return atomics.TestAndSet(&visited[d]) },
		func(d uint32) bool { return atomics.Load32(&visited[d]) == 0 },
		Opts{NoDense: true})
	if out.Size() != n-1 {
		t.Fatalf("star edgeMap reached %d of %d", out.Size(), n-1)
	}
	got := slices.Clone(out.Sparse(parallel.Default))
	slices.Sort(got)
	for i, v := range got {
		if v != uint32(i+1) {
			t.Fatalf("missing vertex %d", i+1)
		}
	}
}

// TestEdgeMapDenseFrontierMatchesSparse feeds the same frontier to EdgeMap
// in dense-only and sparse-only representations, under both traversal
// directions. The dense representation exercises the fast path that
// computes the direction heuristic's degree sum from the flags without
// materializing the sparse form.
func TestEdgeMapDenseFrontierMatchesSparse(t *testing.T) {
	g := gen.BuildRMAT(parallel.Default, 10, 8, true, false, 7)
	n := g.N()
	members := []uint32{}
	flags := make([]bool, n)
	for v := 0; v < n; v += 3 {
		members = append(members, uint32(v))
		flags[v] = true
	}
	for _, opt := range []Opts{{}, {NoDense: true}, {DenseThreshold: 1 << 30}} {
		results := [][]uint32{}
		for _, frontier := range []VertexSubset{
			FromSparse(n, slices.Clone(members)),
			FromDense(parallel.Default, slices.Clone(flags), len(members)),
		} {
			out := EdgeMap(parallel.Default, g, frontier,
				func(s, d uint32, w int32) bool { return true },
				func(d uint32) bool { return true }, opt)
			ids := slices.Clone(out.Sparse(parallel.Default))
			slices.Sort(ids)
			ids = slices.Compact(ids)
			results = append(results, ids)
		}
		if !slices.Equal(results[0], results[1]) {
			t.Fatalf("opts %+v: dense frontier output (%d ids) differs from sparse (%d ids)",
				opt, len(results[1]), len(results[0]))
		}
	}
}

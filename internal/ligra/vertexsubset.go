// Package ligra implements the Ligra abstractions the paper's algorithms are
// written in (§3): vertexSubsets representing subsets of vertices with dual
// sparse/dense representations, vertexMap/vertexFilter, and edgeMap with
// Ligra's direction optimization plus the cache-friendly edgeMapBlocked
// sparse traversal from the paper's §B (Algorithm 15).
//
// All traversal routines are scheduler-scoped: they take the
// *parallel.Scheduler to run on as their first argument, so concurrent
// callers (e.g. two gbbs.Engine requests) never share parallelism state.
package ligra

import (
	"repro/internal/parallel"
	"repro/internal/prims"
)

// VertexSubset is a subset of the vertices [0, n). It is stored either
// sparsely (an array of vertex IDs) or densely (a boolean per vertex);
// conversions are performed lazily by the traversal routines.
type VertexSubset struct {
	n      int
	sparse []uint32
	dense  []bool
	size   int
}

// Empty returns the empty subset over n vertices.
func Empty(n int) VertexSubset {
	return VertexSubset{n: n, sparse: []uint32{}}
}

// Single returns the subset {v} over n vertices.
func Single(n int, v uint32) VertexSubset {
	return VertexSubset{n: n, sparse: []uint32{v}, size: 1}
}

// FromSparse wraps a slice of distinct vertex IDs as a subset. The slice is
// retained (not copied).
func FromSparse(n int, ids []uint32) VertexSubset {
	return VertexSubset{n: n, sparse: ids, size: len(ids)}
}

// FromDense wraps a dense boolean membership array as a subset. size < 0
// recounts membership in parallel.
func FromDense(s *parallel.Scheduler, flags []bool, size int) VertexSubset {
	if size < 0 {
		size = prims.Count(s, len(flags), func(i int) bool { return flags[i] })
	}
	return VertexSubset{n: len(flags), dense: flags, size: size}
}

// All returns the full subset over n vertices.
func All(s *parallel.Scheduler, n int) VertexSubset {
	ids := make([]uint32, n)
	s.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids[i] = uint32(i)
		}
	})
	return FromSparse(n, ids)
}

// N returns the size of the universe the subset draws from.
func (vs *VertexSubset) N() int { return vs.n }

// Size returns the number of member vertices.
func (vs *VertexSubset) Size() int { return vs.size }

// IsEmpty reports whether the subset has no members.
func (vs *VertexSubset) IsEmpty() bool { return vs.size == 0 }

// IsDense reports whether the subset currently holds a dense representation.
func (vs *VertexSubset) IsDense() bool { return vs.dense != nil && vs.sparse == nil }

// Sparse returns the member IDs, converting from dense if needed (the result
// is cached). The order is unspecified but deterministic.
func (vs *VertexSubset) Sparse(s *parallel.Scheduler) []uint32 {
	if vs.sparse == nil {
		vs.sparse = prims.PackIndex(s, vs.n, func(i int) bool { return vs.dense[i] })
	}
	return vs.sparse
}

// Dense returns the membership flags, converting from sparse if needed (the
// result is cached).
func (vs *VertexSubset) Dense(s *parallel.Scheduler) []bool {
	if vs.dense == nil {
		vs.dense = make([]bool, vs.n)
		ids := vs.sparse
		s.ForRange(len(ids), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				vs.dense[ids[i]] = true
			}
		})
	}
	return vs.dense
}

// Contains reports membership of v.
func (vs *VertexSubset) Contains(v uint32) bool {
	if vs.dense != nil {
		return vs.dense[v]
	}
	for _, u := range vs.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// ForEach applies f to every member in parallel.
func (vs *VertexSubset) ForEach(s *parallel.Scheduler, f func(v uint32)) {
	ids := vs.Sparse(s)
	s.ForRange(len(ids), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(ids[i])
		}
	})
}

// VertexMap applies f to every member of vs in parallel (the paper's
// vertexMap).
func VertexMap(s *parallel.Scheduler, vs VertexSubset, f func(v uint32)) {
	vs.ForEach(s, f)
}

// VertexFilter returns the members of vs satisfying pred (the paper's
// vertexFilter).
func VertexFilter(s *parallel.Scheduler, vs VertexSubset, pred func(v uint32) bool) VertexSubset {
	ids := vs.Sparse(s)
	out := prims.Filter(s, ids, pred)
	return FromSparse(vs.n, out)
}

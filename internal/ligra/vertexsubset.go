// Package ligra implements the Ligra abstractions the paper's algorithms are
// written in (§3): vertexSubsets representing subsets of vertices with dual
// sparse/dense representations, vertexMap/vertexFilter, and edgeMap with
// Ligra's direction optimization plus the cache-friendly edgeMapBlocked
// sparse traversal from the paper's §B (Algorithm 15).
package ligra

import (
	"repro/internal/parallel"
	"repro/internal/prims"
)

// VertexSubset is a subset of the vertices [0, n). It is stored either
// sparsely (an array of vertex IDs) or densely (a boolean per vertex);
// conversions are performed lazily by the traversal routines.
type VertexSubset struct {
	n      int
	sparse []uint32
	dense  []bool
	size   int
}

// Empty returns the empty subset over n vertices.
func Empty(n int) VertexSubset {
	return VertexSubset{n: n, sparse: []uint32{}}
}

// Single returns the subset {v} over n vertices.
func Single(n int, v uint32) VertexSubset {
	return VertexSubset{n: n, sparse: []uint32{v}, size: 1}
}

// FromSparse wraps a slice of distinct vertex IDs as a subset. The slice is
// retained (not copied).
func FromSparse(n int, ids []uint32) VertexSubset {
	return VertexSubset{n: n, sparse: ids, size: len(ids)}
}

// FromDense wraps a dense boolean membership array as a subset. size < 0
// recounts membership in parallel.
func FromDense(flags []bool, size int) VertexSubset {
	if size < 0 {
		size = prims.Count(len(flags), func(i int) bool { return flags[i] })
	}
	return VertexSubset{n: len(flags), dense: flags, size: size}
}

// All returns the full subset over n vertices.
func All(n int) VertexSubset {
	ids := make([]uint32, n)
	parallel.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids[i] = uint32(i)
		}
	})
	return FromSparse(n, ids)
}

// N returns the size of the universe the subset draws from.
func (s *VertexSubset) N() int { return s.n }

// Size returns the number of member vertices.
func (s *VertexSubset) Size() int { return s.size }

// IsEmpty reports whether the subset has no members.
func (s *VertexSubset) IsEmpty() bool { return s.size == 0 }

// IsDense reports whether the subset currently holds a dense representation.
func (s *VertexSubset) IsDense() bool { return s.dense != nil && s.sparse == nil }

// Sparse returns the member IDs, converting from dense if needed (the result
// is cached). The order is unspecified but deterministic.
func (s *VertexSubset) Sparse() []uint32 {
	if s.sparse == nil {
		s.sparse = prims.PackIndex(s.n, func(i int) bool { return s.dense[i] })
	}
	return s.sparse
}

// Dense returns the membership flags, converting from sparse if needed (the
// result is cached).
func (s *VertexSubset) Dense() []bool {
	if s.dense == nil {
		s.dense = make([]bool, s.n)
		ids := s.sparse
		parallel.ForRange(len(ids), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.dense[ids[i]] = true
			}
		})
	}
	return s.dense
}

// Contains reports membership of v.
func (s *VertexSubset) Contains(v uint32) bool {
	if s.dense != nil {
		return s.dense[v]
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// ForEach applies f to every member in parallel.
func (s *VertexSubset) ForEach(f func(v uint32)) {
	ids := s.Sparse()
	parallel.ForRange(len(ids), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(ids[i])
		}
	})
}

// VertexMap applies f to every member of s in parallel (the paper's
// vertexMap).
func VertexMap(s VertexSubset, f func(v uint32)) {
	s.ForEach(f)
}

// VertexFilter returns the members of s satisfying pred (the paper's
// vertexFilter).
func VertexFilter(s VertexSubset, pred func(v uint32) bool) VertexSubset {
	ids := s.Sparse()
	out := prims.Filter(ids, pred)
	return FromSparse(s.n, out)
}

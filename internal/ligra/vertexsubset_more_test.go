package ligra

import (
	"repro/internal/parallel"
	"slices"
	"testing"
)

func TestSparseConversionIsCached(t *testing.T) {
	flags := make([]bool, 8)
	flags[3], flags[6] = true, true
	s := FromDense(parallel.Default, flags, 2)
	a := s.Sparse(parallel.Default)
	b := s.Sparse(parallel.Default)
	if &a[0] != &b[0] {
		t.Fatal("Sparse() not cached")
	}
}

func TestDenseConversionIsCached(t *testing.T) {
	s := FromSparse(8, []uint32{1, 2})
	a := s.Dense(parallel.Default)
	b := s.Dense(parallel.Default)
	if &a[0] != &b[0] {
		t.Fatal("Dense() not cached")
	}
}

func TestContainsBothRepresentations(t *testing.T) {
	s := FromSparse(10, []uint32{4, 7})
	if !s.Contains(4) || !s.Contains(7) || s.Contains(5) {
		t.Fatal("sparse Contains wrong")
	}
	_ = s.Dense(parallel.Default)
	if !s.Contains(4) || s.Contains(5) {
		t.Fatal("dense Contains wrong")
	}
}

func TestVertexFilterPreservesUniverse(t *testing.T) {
	s := All(parallel.Default, 20)
	f := VertexFilter(parallel.Default, s, func(v uint32) bool { return v >= 15 })
	if f.N() != 20 || f.Size() != 5 {
		t.Fatalf("N=%d Size=%d", f.N(), f.Size())
	}
	got := slices.Clone(f.Sparse(parallel.Default))
	slices.Sort(got)
	if !slices.Equal(got, []uint32{15, 16, 17, 18, 19}) {
		t.Fatalf("filtered = %v", got)
	}
}

func TestFromDenseZeroSize(t *testing.T) {
	s := FromDense(parallel.Default, make([]bool, 5), -1)
	if !s.IsEmpty() || s.Size() != 0 {
		t.Fatal("all-false dense subset not empty")
	}
	if len(s.Sparse(parallel.Default)) != 0 {
		t.Fatal("sparse of empty dense not empty")
	}
}

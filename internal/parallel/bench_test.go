package parallel

// Microbenchmarks for scheduler dispatch overhead: each pooled benchmark has
// a Spawn twin running the pre-pool spawn-per-call implementation
// (goroutines + WaitGroup per ForRange, channel + goroutine per Do), so
// `go test -bench Dispatch\|ForkJoin\|Rounds ./internal/parallel` prints the
// dispatch win directly. CI runs the suite with -benchtime 1x as a
// compile-and-smoke so benchmark code cannot rot.

import (
	"sync"
	"sync/atomic"
	"testing"
)

// spawnForRange is the spawn-per-call scheduler this package used before the
// persistent pool: P fresh goroutines and a WaitGroup per loop, chunk claim
// via an atomic counter. Kept verbatim as the benchmark baseline.
func spawnForRange(p, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	blocks := (n + grain - 1) / grain
	if p == 1 || blocks == 1 {
		body(0, n)
		return
	}
	if p > blocks {
		p = blocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// spawnDo is the pre-pool fork-join: one channel and one goroutine per fork.
func spawnDo(f, g func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		g()
	}()
	f()
	<-done
}

const benchWorkers = 4

// touch is the benchmark loop body: cheap enough that dispatch overhead
// dominates, real enough that the compiler cannot delete the loop.
func touch(x []int64) func(lo, hi int) {
	return func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i]++
		}
	}
}

func benchDispatchPooled(b *testing.B, n, grain int) {
	s := New(benchWorkers)
	defer s.Close()
	x := make([]int64, n)
	body := touch(x)
	s.ForRange(n, grain, body) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ForRange(n, grain, body)
	}
}

func benchDispatchSpawn(b *testing.B, n, grain int) {
	x := make([]int64, n)
	body := touch(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spawnForRange(benchWorkers, n, grain, body)
	}
}

// Dispatch latency for a small loop (n=1e3): the regime of round-based
// algorithms near their frontiers' tails, where per-call overhead is the
// whole cost. grain 128 forces real multi-block dispatch.
func BenchmarkDispatch1e3Pooled(b *testing.B) { benchDispatchPooled(b, 1_000, 128) }

// BenchmarkDispatch1e3Spawn is the spawn-per-call baseline for n=1e3.
func BenchmarkDispatch1e3Spawn(b *testing.B) { benchDispatchSpawn(b, 1_000, 128) }

// Dispatch plus real work for a large loop (n=1e6) at the automatic grain.
func BenchmarkDispatch1e6Pooled(b *testing.B) { benchDispatchPooled(b, 1_000_000, 0) }

// BenchmarkDispatch1e6Spawn is the spawn-per-call baseline for n=1e6.
func BenchmarkDispatch1e6Spawn(b *testing.B) {
	s := New(benchWorkers) // only for grain selection parity
	defer s.Close()
	benchDispatchSpawn(b, 1_000_000, s.grainOf(1_000_000, 0, benchWorkers))
}

const forkDepth = 10 // 2^10 = 1024 leaves per iteration

// Fork-join tree of depth 10 — the shape of the parallel sorts. The pooled
// scheduler lazily reclaims unforked halves; the baseline pays a channel
// and goroutine per fork.
func BenchmarkForkJoinDepthPooled(b *testing.B) {
	s := New(benchWorkers)
	defer s.Close()
	var sink atomic.Int64
	var walk func(d int)
	walk = func(d int) {
		if d == 0 {
			sink.Add(1)
			return
		}
		s.Do(func() { walk(d - 1) }, func() { walk(d - 1) })
	}
	walk(forkDepth) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walk(forkDepth)
	}
}

// BenchmarkForkJoinDepthSpawn is the channel-per-fork baseline.
func BenchmarkForkJoinDepthSpawn(b *testing.B) {
	var sink atomic.Int64
	var walk func(d int)
	walk = func(d int) {
		if d == 0 {
			sink.Add(1)
			return
		}
		spawnDo(func() { walk(d - 1) }, func() { walk(d - 1) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walk(forkDepth)
	}
}

const (
	bfsRounds    = 100
	bfsFrontier  = 4096
	bfsRoundGran = 256
)

// Round-based BFS proxy: 100 dependent rounds of a 4096-element frontier
// loop, the cadence at which EdgeMap hits the scheduler level by level.
// Per-round dispatch overhead is exactly what the persistent pool removes.
func BenchmarkRoundsBFSProxyPooled(b *testing.B) {
	s := New(benchWorkers)
	defer s.Close()
	x := make([]int64, bfsFrontier)
	body := touch(x)
	s.ForRange(bfsFrontier, bfsRoundGran, body) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < bfsRounds; r++ {
			s.ForRange(bfsFrontier, bfsRoundGran, body)
		}
	}
}

// BenchmarkRoundsBFSProxySpawn is the spawn-per-call baseline for the
// round-based proxy.
func BenchmarkRoundsBFSProxySpawn(b *testing.B) {
	x := make([]int64, bfsFrontier)
	body := touch(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < bfsRounds; r++ {
			spawnForRange(benchWorkers, bfsFrontier, bfsRoundGran, body)
		}
	}
}

// Package parallel provides the nested fork-join runtime used by every
// parallel primitive and algorithm in this repository.
//
// The paper analyses algorithms in the MT-RAM (multi-threaded RAM) model and
// implements them with Cilk Plus, whose work-stealing scheduler executes an
// algorithm with W work and D depth in W/P + O(D) expected time on P
// processors. Goroutines are too coarse to fork per element, so this package
// schedules *blocks*: a parallel loop over n items is split into chunks of a
// caller-controlled grain size, and a bounded set of worker goroutines claim
// chunks with an atomic counter. This preserves the dynamic load balancing a
// work-stealing scheduler provides for parallel loops while keeping
// per-goroutine overhead off the critical path.
//
// The runtime is instance-based: a Scheduler carries its own worker count
// (and optionally a cancellation signal), so independent callers — e.g. two
// gbbs.Engine values serving different requests — can run concurrently with
// different parallelism without sharing any global state. Default is the
// process-wide scheduler the package-level wrappers (ForRange, SetWorkers,
// ...) delegate to; it preserves the historical free-function surface used by
// the paper-measurement path.
//
// A Scheduler with one worker (New(1), or SetWorkers(1) on Default) runs
// every operation inline with zero scheduling overhead; this is how the
// single-thread columns of the paper's Tables 2, 4 and 5 are measured.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Scheduler executes parallel loops and fork-join tasks on a bounded set of
// worker goroutines. The zero value is not usable; construct with New. A
// Scheduler is cheap (a few words) and safe for concurrent use: independent
// loops issued against the same Scheduler each spawn their own workers, so a
// Scheduler can serve many goroutines at once.
type Scheduler struct {
	workers atomic.Int64
	grain   int // default grain override; 0 selects the automatic grain
	// done/err carry an optional cancellation signal attached with
	// Attach(ctx). Poll panics with a stopPanic when done is closed;
	// RecoverStop converts that panic back into an error at the API
	// boundary. They are immutable after construction.
	done <-chan struct{}
	err  func() error
}

// New returns a Scheduler that runs parallel operations on p worker
// goroutines. p < 1 selects 1 (fully sequential); use runtime.NumCPU() for
// the hardware parallelism.
func New(p int) *Scheduler {
	s := &Scheduler{}
	if p < 1 {
		p = 1
	}
	s.workers.Store(int64(p))
	return s
}

// NewWithGrain returns a Scheduler with a fixed default grain size used when
// a loop does not specify one. grain <= 0 keeps the automatic heuristic.
func NewWithGrain(p, grain int) *Scheduler {
	s := New(p)
	if grain > 0 {
		s.grain = grain
	}
	return s
}

// Default is the process-wide scheduler the package-level wrappers delegate
// to. It defaults to runtime.NumCPU() workers.
var Default = New(runtime.NumCPU())

// Workers reports the scheduler's current worker count.
func (s *Scheduler) Workers() int { return int(s.workers.Load()) }

// SetWorkers sets the scheduler's worker count and returns the previous
// value. p < 1 is treated as 1. It does not affect operations in flight.
func (s *Scheduler) SetWorkers(p int) int {
	if p < 1 {
		p = 1
	}
	return int(s.workers.Swap(int64(p)))
}

// Attach returns a child scheduler that shares nothing with s but starts
// from s's worker count and grain, and additionally observes ctx: once ctx
// is done, Poll on the child panics with a cancellation token that
// RecoverStop translates into ctx.Err(). Attach is how a gbbs.Engine scopes
// one algorithm invocation to one request context. A nil or background-like
// ctx (ctx.Done() == nil) returns a child with no cancellation signal.
func (s *Scheduler) Attach(ctx context.Context) *Scheduler {
	child := &Scheduler{grain: s.grain}
	child.workers.Store(s.workers.Load())
	if ctx != nil && ctx.Done() != nil {
		child.done = ctx.Done()
		child.err = ctx.Err
	}
	return child
}

// stopPanic is the token Poll throws when the attached context is done. It
// deliberately does not implement error: an unrecovered stopPanic (a Poll
// outside RecoverStop) should crash loudly rather than be mistaken for a
// value.
type stopPanic struct{ err error }

// Poll checks the cancellation signal attached with Attach and panics with a
// stop token if the context is done. Algorithms call it between rounds (not
// inside loop bodies — the panic must unwind the algorithm's own goroutine).
// On a scheduler with no attached context it is a single nil check.
func (s *Scheduler) Poll() {
	if s.done == nil {
		return
	}
	select {
	case <-s.done:
		err := context.Canceled
		if s.err != nil {
			if e := s.err(); e != nil {
				err = e
			}
		}
		panic(stopPanic{err})
	default:
	}
}

// RecoverStop recovers a stop token thrown by Poll and stores its error
// (ctx.Err()) into *err; any other panic is re-raised. Use it as
// `defer parallel.RecoverStop(&err)` at the boundary that called Attach.
func RecoverStop(err *error) {
	if r := recover(); r != nil {
		if sp, ok := r.(stopPanic); ok {
			*err = sp.err
			return
		}
		panic(r)
	}
}

// grainFor picks a default grain: enough blocks for dynamic load balancing
// (8 per worker) without making blocks so small that scheduling dominates.
// The floor matters for round-based algorithms (k-core peels ρ rounds, BFS
// diam rounds): sub-512-element rounds run inline rather than paying
// goroutine-spawn latency per round.
func grainFor(n, p int) int {
	g := n / (8 * p)
	if g < 512 {
		g = 512
	}
	return g
}

func (s *Scheduler) grainOf(n, grain, p int) int {
	if grain > 0 {
		return grain
	}
	if s.grain > 0 {
		return s.grain
	}
	return grainFor(n, p)
}

// ForRange runs body over the half-open range [0, n) split into chunks of at
// most grain elements. body receives [lo, hi) sub-ranges and is called
// concurrently from multiple goroutines; distinct calls never overlap.
// grain <= 0 selects the scheduler's default grain. ForRange returns when
// all chunks have completed.
func (s *Scheduler) ForRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := s.Workers()
	grain = s.grainOf(n, grain, p)
	blocks := (n + grain - 1) / grain
	if p == 1 || blocks == 1 {
		body(0, n)
		return
	}
	if p > blocks {
		p = blocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For runs body(i) for each i in [0, n) in parallel. The per-element closure
// call costs a few nanoseconds; hot loops should prefer ForRange and iterate
// inside the block.
func (s *Scheduler) For(n, grain int, body func(i int)) {
	s.ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs f and g in parallel (binary fork-join) and returns when both have
// completed. With one worker it runs them sequentially.
func (s *Scheduler) Do(f, g func()) {
	if s.Workers() == 1 {
		f()
		g()
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		g()
	}()
	f()
	<-done
}

// DoN runs each of fs in parallel and returns when all have completed.
func (s *Scheduler) DoN(fs ...func()) {
	if s.Workers() == 1 || len(fs) <= 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[1:] {
		go func() {
			defer wg.Done()
			f()
		}()
	}
	fs[0]()
	wg.Wait()
}

// Blocks returns the block boundaries ForRange would use for n items with
// the given grain: a slice of block start offsets plus the terminal n. It
// lets two-pass algorithms (count then scatter) agree on the partition.
func (s *Scheduler) Blocks(n, grain int) []int {
	if n <= 0 {
		return []int{0}
	}
	grain = s.grainOf(n, grain, s.Workers())
	nb := (n + grain - 1) / grain
	out := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		out[b] = b * grain
	}
	out[nb] = n
	return out
}

// ForBlocks runs body once per block of the partition returned by Blocks,
// passing the block index and its [lo, hi) range.
func (s *Scheduler) ForBlocks(bounds []int, body func(b, lo, hi int)) {
	nb := len(bounds) - 1
	s.For(nb, 1, func(b int) {
		body(b, bounds[b], bounds[b+1])
	})
}

// Package-level wrappers delegating to Default. They keep the historical
// free-function surface working (the paper-measurement path and older tests
// flip Default's worker count); new code should hold a *Scheduler.

// Workers reports Default's worker count.
//
// Deprecated: use a Scheduler instance (parallel.New or Default.Workers).
func Workers() int { return Default.Workers() }

// SetWorkers sets Default's worker count and returns the previous value.
//
// Deprecated: create an isolated scheduler with parallel.New(p) instead of
// mutating the process-wide default.
func SetWorkers(p int) int { return Default.SetWorkers(p) }

// ForRange runs body over [0, n) on the Default scheduler.
func ForRange(n, grain int, body func(lo, hi int)) { Default.ForRange(n, grain, body) }

// For runs body(i) for each i in [0, n) on the Default scheduler.
func For(n, grain int, body func(i int)) { Default.For(n, grain, body) }

// Do runs f and g in parallel on the Default scheduler.
func Do(f, g func()) { Default.Do(f, g) }

// DoN runs each of fs in parallel on the Default scheduler.
func DoN(fs ...func()) { Default.DoN(fs...) }

// Blocks returns Default's block partition for n items.
func Blocks(n, grain int) []int { return Default.Blocks(n, grain) }

// ForBlocks runs body once per block on the Default scheduler.
func ForBlocks(bounds []int, body func(b, lo, hi int)) { Default.ForBlocks(bounds, body) }

// Package parallel provides the nested fork-join runtime used by every
// parallel primitive and algorithm in this repository.
//
// The paper analyses algorithms in the MT-RAM (multi-threaded RAM) model and
// implements them with Cilk Plus, whose work-stealing scheduler executes an
// algorithm with W work and D depth in W/P + O(D) expected time on P
// processors. Goroutines are too coarse to fork per element, so this package
// schedules *blocks*: a parallel loop over n items is split into chunks of a
// caller-controlled grain size, and a bounded set of worker goroutines claim
// chunks with an atomic counter. This preserves the dynamic load balancing a
// work-stealing scheduler provides for parallel loops while keeping
// per-goroutine overhead off the critical path.
//
// Setting the worker count to 1 (SetWorkers(1)) makes every operation run
// inline with zero scheduling overhead; this is how the single-thread columns
// of the paper's Tables 2, 4 and 5 are measured.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the number of OS-thread-backed goroutines a parallel operation
// may use. It defaults to runtime.NumCPU and is read atomically so benchmarks
// can flip between 1-thread and P-thread configurations.
var workers atomic.Int64

func init() {
	workers.Store(int64(runtime.NumCPU()))
}

// Workers reports the current worker count used by parallel operations.
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the number of workers used by subsequent parallel
// operations and returns the previous value. p < 1 is treated as 1.
// It does not affect operations already in flight.
func SetWorkers(p int) int {
	if p < 1 {
		p = 1
	}
	return int(workers.Swap(int64(p)))
}

// grainFor picks a default grain: enough blocks for dynamic load balancing
// (8 per worker) without making blocks so small that scheduling dominates.
// The floor matters for round-based algorithms (k-core peels ρ rounds, BFS
// diam rounds): sub-512-element rounds run inline rather than paying
// goroutine-spawn latency per round.
func grainFor(n, p int) int {
	g := n / (8 * p)
	if g < 512 {
		g = 512
	}
	return g
}

// ForRange runs body over the half-open range [0, n) split into chunks of at
// most grain elements. body receives [lo, hi) sub-ranges and is called
// concurrently from multiple goroutines; distinct calls never overlap.
// grain <= 0 selects an automatic grain. ForRange returns when all chunks
// have completed.
func ForRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if grain <= 0 {
		grain = grainFor(n, p)
	}
	blocks := (n + grain - 1) / grain
	if p == 1 || blocks == 1 {
		body(0, n)
		return
	}
	if p > blocks {
		p = blocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= blocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For runs body(i) for each i in [0, n) in parallel. The per-element closure
// call costs a few nanoseconds; hot loops should prefer ForRange and iterate
// inside the block.
func For(n, grain int, body func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs f and g in parallel (binary fork-join) and returns when both have
// completed. With one worker it runs them sequentially.
func Do(f, g func()) {
	if Workers() == 1 {
		f()
		g()
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		g()
	}()
	f()
	<-done
}

// DoN runs each of fs in parallel and returns when all have completed.
func DoN(fs ...func()) {
	if Workers() == 1 || len(fs) <= 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fs) - 1)
	for _, f := range fs[1:] {
		go func() {
			defer wg.Done()
			f()
		}()
	}
	fs[0]()
	wg.Wait()
}

// Blocks returns the block boundaries ForRange would use for n items with the
// given grain: a slice of block start offsets plus the terminal n. It lets
// two-pass algorithms (count then scatter) agree on the partition.
func Blocks(n, grain int) []int {
	if n <= 0 {
		return []int{0}
	}
	if grain <= 0 {
		grain = grainFor(n, Workers())
	}
	nb := (n + grain - 1) / grain
	out := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		out[b] = b * grain
	}
	out[nb] = n
	return out
}

// ForBlocks runs body once per block of the partition returned by Blocks,
// passing the block index and its [lo, hi) range.
func ForBlocks(bounds []int, body func(b, lo, hi int)) {
	nb := len(bounds) - 1
	For(nb, 1, func(b int) {
		body(b, bounds[b], bounds[b+1])
	})
}

// Package parallel provides the nested fork-join runtime used by every
// parallel primitive and algorithm in this repository.
//
// The paper analyses algorithms in the MT-RAM (multi-threaded RAM) model and
// implements them with Cilk Plus, whose work-stealing scheduler executes an
// algorithm with W work and D depth in W/P + O(D) expected time on P
// processors. Goroutines are too coarse to fork per element, so this package
// schedules *blocks*: a parallel loop over n items is split into chunks of a
// caller-controlled grain size, and workers claim chunks with an atomic
// counter — the dynamic load balancing of a work-stealing scheduler without
// per-element forks.
//
// Each Scheduler owns a lazily-started pool of persistent workers. A
// parallel loop does not spawn goroutines: it publishes a task descriptor
// (range, grain, body, atomic claim counter), wakes parked pool workers
// through per-worker channels, and the submitting goroutine itself claims
// chunks alongside them, joining through the task's atomic counter when its
// own claims run out. Round-based algorithms (one EdgeMap per BFS level,
// ρ peeling rounds in k-core) therefore pay a wake/park handshake per round
// instead of P goroutine creations. Do and DoN ride the same task machinery:
// a fork is published, the caller runs its own half, then reclaims the other
// half inline if no worker picked it up — no channel is allocated on the
// fork-join path.
//
// Nesting can never deadlock: workers are pure helpers, and every loop is
// fully driven by its submitter, so a ForRange body issuing another ForRange
// on the same scheduler just makes the calling worker the inner loop's
// submitter while parked siblings lend a hand. Attach(ctx) children share
// the parent's pool (plus a cancellation signal), so an Engine's whole call
// tree draws from one resident worker set. Workers park between tasks and
// exit after an idle timeout — an abandoned Scheduler decays to zero
// goroutines — and Close parks the pool immediately and permanently
// (operations afterwards still run correctly, inline on their callers).
//
// The runtime is instance-based: a Scheduler carries its own worker count,
// pool and optional cancellation signal, so independent callers — e.g. two
// gbbs.Engine values serving different requests — run concurrently with
// different parallelism and no shared state. Default is the process-wide
// scheduler the package-level wrappers (ForRange, SetWorkers, ...) delegate
// to; it preserves the historical free-function surface used by the
// paper-measurement path.
//
// A Scheduler with one worker (New(1), or SetWorkers(1) on Default) runs
// every operation inline with zero scheduling overhead; this is how the
// single-thread columns of the paper's Tables 2, 4 and 5 are measured.
package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Scheduler executes parallel loops and fork-join tasks on a persistent,
// lazily-started pool of worker goroutines. The zero value is not usable;
// construct with New. A Scheduler is safe for concurrent use: independent
// loops issued against the same Scheduler at once share the pool's workers
// and each is driven to completion by its own submitting goroutine.
type Scheduler struct {
	workers atomic.Int64
	grain   int // default grain override; 0 selects the automatic grain
	// pool is the persistent worker set, shared with every Attach child so
	// an engine's whole call tree draws from one resident pool. owner marks
	// the Scheduler that created the pool: SetWorkers and Close resize or
	// park the pool only through its owner.
	pool  *pool
	owner bool
	// done/err carry an optional cancellation signal attached with
	// Attach(ctx). Poll panics with a stopPanic when done is closed;
	// RecoverStop converts that panic back into an error at the API
	// boundary. They are immutable after construction.
	done <-chan struct{}
	err  func() error
}

// New returns a Scheduler that runs parallel operations with parallelism p:
// the submitting goroutine plus up to p-1 pooled workers, spawned on first
// demand. p < 1 selects 1 (fully sequential); use runtime.NumCPU() for the
// hardware parallelism.
func New(p int) *Scheduler {
	s := &Scheduler{}
	if p < 1 {
		p = 1
	}
	s.workers.Store(int64(p))
	s.pool = newPool(p - 1)
	s.owner = true
	return s
}

// NewWithGrain returns a Scheduler with a fixed default grain size used when
// a loop does not specify one. grain <= 0 keeps the automatic heuristic.
func NewWithGrain(p, grain int) *Scheduler {
	s := New(p)
	if grain > 0 {
		s.grain = grain
	}
	return s
}

// Default is the process-wide scheduler the package-level wrappers delegate
// to. It defaults to runtime.NumCPU() workers.
var Default = New(runtime.NumCPU())

// Workers reports the scheduler's current worker count.
func (s *Scheduler) Workers() int { return int(s.workers.Load()) }

// SetWorkers sets the scheduler's worker count and returns the previous
// value. p < 1 is treated as 1. On a pool-owning scheduler (one made by New,
// not Attach) it also resizes the pool: growth takes effect on the next
// loop, and excess workers after a shrink exit when they next go idle. It
// does not affect operations in flight.
func (s *Scheduler) SetWorkers(p int) int {
	if p < 1 {
		p = 1
	}
	prev := int(s.workers.Swap(int64(p)))
	if s.owner {
		s.pool.setLimit(p - 1)
	}
	return prev
}

// Close parks the scheduler's worker pool permanently: parked workers exit,
// busy ones finish their current task first, and no new workers spawn.
// Operations issued after Close still run correctly, inline on their calling
// goroutines. Close is idempotent, and a no-op on Attach children (the pool
// belongs to the scheduler that created it). Even without Close, an idle
// pool decays to zero goroutines on its own after an idle timeout.
func (s *Scheduler) Close() {
	if s.owner {
		s.pool.close()
	}
}

// PoolWorkers reports the pool's currently live worker goroutines (parked
// or busy). It is a diagnostics hook for tests and serving-layer stats; the
// count is naturally racy.
func (s *Scheduler) PoolWorkers() int { return s.pool.workerCount() }

// Attach returns a child scheduler that shares s's worker pool — so an
// engine's whole call tree runs on one resident worker set — but carries
// its own worker count (copied from s) and additionally observes ctx: once
// ctx is done, Poll on the child panics with a cancellation token that
// RecoverStop translates into ctx.Err(). Attach is how a gbbs.Engine scopes
// one algorithm invocation to one request context. A nil or background-like
// ctx (ctx.Done() == nil) returns a child with no cancellation signal.
func (s *Scheduler) Attach(ctx context.Context) *Scheduler {
	child := &Scheduler{grain: s.grain, pool: s.pool}
	child.workers.Store(s.workers.Load())
	if ctx != nil && ctx.Done() != nil {
		child.done = ctx.Done()
		child.err = ctx.Err
	}
	return child
}

// stopPanic is the token Poll throws when the attached context is done. It
// deliberately does not implement error: an unrecovered stopPanic (a Poll
// outside RecoverStop) should crash loudly rather than be mistaken for a
// value.
type stopPanic struct{ err error }

// Poll checks the cancellation signal attached with Attach and panics with a
// stop token if the context is done. Algorithms call it between rounds (not
// inside loop bodies — the panic must unwind the algorithm's own goroutine).
// On a scheduler with no attached context it is a single nil check.
//
// When a signal is attached, Poll also yields the processor. The pooled
// runtime hands work between the submitter and its workers through direct
// wakeups, which on a saturated GOMAXPROCS (notably 1) can keep the pair
// running in each other's favor and starve the goroutine that would call
// cancel() — the context's Done channel then never closes and Poll never
// fires. A Gosched per round forces a trip through the Go scheduler (which
// runs expired timers and queued goroutines), bounding cancellation latency
// at a few rounds; uncancellable paths (the benchmark columns) skip it
// entirely.
func (s *Scheduler) Poll() {
	if s.done == nil {
		return
	}
	runtime.Gosched()
	select {
	case <-s.done:
		err := context.Canceled
		if s.err != nil {
			if e := s.err(); e != nil {
				err = e
			}
		}
		panic(stopPanic{err})
	default:
	}
}

// RecoverStop recovers a stop token thrown by Poll and stores its error
// (ctx.Err()) into *err; any other panic is re-raised. Use it as
// `defer parallel.RecoverStop(&err)` at the boundary that called Attach.
func RecoverStop(err *error) {
	if r := recover(); r != nil {
		if sp, ok := r.(stopPanic); ok {
			*err = sp.err
			return
		}
		panic(r)
	}
}

// grainFor picks a default grain: enough blocks for dynamic load balancing
// (8 per worker) without making blocks so small that scheduling dominates.
// The floor matters for round-based algorithms (k-core peels ρ rounds, BFS
// diam rounds): sub-512-element rounds run inline rather than paying
// goroutine-spawn latency per round.
func grainFor(n, p int) int {
	g := n / (8 * p)
	if g < 512 {
		g = 512
	}
	return g
}

func (s *Scheduler) grainOf(n, grain, p int) int {
	if grain > 0 {
		return grain
	}
	if s.grain > 0 {
		return s.grain
	}
	return grainFor(n, p)
}

// ForRange runs body over the half-open range [0, n) split into chunks of at
// most grain elements. body receives [lo, hi) sub-ranges and is called
// concurrently from multiple goroutines; distinct calls never overlap.
// grain <= 0 selects the scheduler's default grain. ForRange returns when
// all chunks have completed.
//
// The call publishes one task descriptor to the scheduler's pool, wakes up
// to min(p, blocks)-1 parked workers, and claims chunks itself until the
// claim counter is exhausted — so it completes even if every pool worker is
// busy elsewhere, which is what makes nested ForRange calls on one
// scheduler deadlock-free.
func (s *Scheduler) ForRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := s.Workers()
	grain = s.grainOf(n, grain, p)
	blocks := (n + grain - 1) / grain
	if p == 1 || blocks == 1 {
		body(0, n)
		return
	}
	if p > blocks {
		p = blocks
	}
	t := &task{blocks: int64(blocks), n: n, grain: grain, body: body}
	s.runTask(t, p-1)
}

// runTask is the single publish/participate/join protocol behind ForRange,
// Do and DoN. Ordering is load-bearing: the join counter is armed before
// the task becomes visible to workers; the submitter claims blocks until
// the counter is exhausted (guaranteeing completion with zero helpers);
// retire strictly precedes the join so no worker can pick the task up
// after the submitter returns.
//
// The cleanup is deferred so that a body panicking on the submitting
// goroutine — which, unlike a panic on a pool worker, is recoverable by
// the caller (gbbs/serve recovers build panics into request errors) —
// cannot strand a published task in the shared pool for a later loop's
// workers to pick up. The deferred path claims any still-unstarted blocks
// itself without executing them (balancing the join counter), unpublishes
// the task, and waits out blocks already running on workers before the
// panic continues unwinding.
func (s *Scheduler) runTask(t *task, helpers int) {
	t.wg.Add(int(t.blocks))
	s.pool.submit(t, helpers)
	defer func() {
		for {
			b := t.next.Add(1) - 1
			if b >= t.blocks {
				break
			}
			t.wg.Done() // cancel a block no one started
		}
		s.pool.retire(t)
		t.wg.Wait()
	}()
	t.run()
}

// For runs body(i) for each i in [0, n) in parallel. The per-element closure
// call costs a few nanoseconds; hot loops should prefer ForRange and iterate
// inside the block.
func (s *Scheduler) For(n, grain int, body func(i int)) {
	s.ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs f and g in parallel (binary fork-join) and returns when both have
// completed. With one worker it runs them sequentially.
//
// The fork is published as a two-block task: the caller claims f, a pool
// worker may claim g, and if none does by the time f finishes the caller
// reclaims g inline — lazy forking, so deep Do recursions (parallel sort)
// degrade to sequential calls when all workers are busy. The join is the
// task's atomic counter; no goroutine is spawned and no channel allocated.
func (s *Scheduler) Do(f, g func()) {
	if s.Workers() == 1 {
		f()
		g()
		return
	}
	pair := [2]func(){f, g}
	s.runTask(&task{blocks: 2, funcs: pair[:]}, 1)
}

// DoN runs each of fs in parallel and returns when all have completed. Like
// Do it publishes one task and participates in draining it, claiming any
// functions no pool worker picks up.
func (s *Scheduler) DoN(fs ...func()) {
	if s.Workers() == 1 || len(fs) <= 1 {
		for _, f := range fs {
			f()
		}
		return
	}
	helpers := min(s.Workers(), len(fs)) - 1
	s.runTask(&task{blocks: int64(len(fs)), funcs: fs}, helpers)
}

// Blocks returns the block boundaries ForRange would use for n items with
// the given grain: a slice of block start offsets plus the terminal n. It
// lets two-pass algorithms (count then scatter) agree on the partition.
func (s *Scheduler) Blocks(n, grain int) []int {
	if n <= 0 {
		return []int{0}
	}
	grain = s.grainOf(n, grain, s.Workers())
	nb := (n + grain - 1) / grain
	out := make([]int, nb+1)
	for b := 0; b < nb; b++ {
		out[b] = b * grain
	}
	out[nb] = n
	return out
}

// ForBlocks runs body once per block of the partition returned by Blocks,
// passing the block index and its [lo, hi) range.
func (s *Scheduler) ForBlocks(bounds []int, body func(b, lo, hi int)) {
	nb := len(bounds) - 1
	s.For(nb, 1, func(b int) {
		body(b, bounds[b], bounds[b+1])
	})
}

// Package-level wrappers delegating to Default. They keep the historical
// free-function surface working (the paper-measurement path and older tests
// flip Default's worker count); new code should hold a *Scheduler.

// Workers reports Default's worker count.
//
// Deprecated: use a Scheduler instance (parallel.New or Default.Workers).
func Workers() int { return Default.Workers() }

// SetWorkers sets Default's worker count and returns the previous value.
//
// Deprecated: create an isolated scheduler with parallel.New(p) instead of
// mutating the process-wide default.
func SetWorkers(p int) int { return Default.SetWorkers(p) }

// ForRange runs body over [0, n) on the Default scheduler.
func ForRange(n, grain int, body func(lo, hi int)) { Default.ForRange(n, grain, body) }

// For runs body(i) for each i in [0, n) on the Default scheduler.
func For(n, grain int, body func(i int)) { Default.For(n, grain, body) }

// Do runs f and g in parallel on the Default scheduler.
func Do(f, g func()) { Default.Do(f, g) }

// DoN runs each of fs in parallel on the Default scheduler.
func DoN(fs ...func()) { Default.DoN(fs...) }

// Blocks returns Default's block partition for n items.
func Blocks(n, grain int) []int { return Default.Blocks(n, grain) }

// ForBlocks runs body once per block on the Default scheduler.
func ForBlocks(bounds []int, body func(b, lo, hi int)) { Default.ForBlocks(bounds, body) }

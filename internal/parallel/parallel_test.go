package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForRangeCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023, 1 << 16} {
		for _, grain := range []int{0, 1, 3, 64, 100000} {
			seen := make([]int32, n)
			ForRange(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d grain=%d: bad range [%d,%d)", n, grain, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d grain=%d: index %d covered %d times", n, grain, i, c)
				}
			}
		}
	}
}

func TestForCoversAllIndices(t *testing.T) {
	n := 10000
	var sum atomic.Int64
	For(n, 0, func(i int) { sum.Add(int64(i)) })
	want := int64(n) * int64(n-1) / 2
	if sum.Load() != want {
		t.Fatalf("For sum = %d, want %d", sum.Load(), want)
	}
}

func TestForRangeSingleWorkerRunsInline(t *testing.T) {
	old := SetWorkers(1)
	defer SetWorkers(old)
	// With one worker the body must run on the calling goroutine in order.
	last := -1
	ForRange(1000, 10, func(lo, hi int) {
		if lo != last+1 {
			t.Fatalf("out-of-order block start %d after %d", lo, last)
		}
		last = hi - 1
	})
	if last != 999 {
		t.Fatalf("last = %d", last)
	}
}

func TestSetWorkersClampsToOne(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(-5)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-5)", Workers())
	}
}

func TestDoRunsBoth(t *testing.T) {
	var a, b atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatal("Do did not run both functions")
	}
}

func TestDoNRunsAll(t *testing.T) {
	var count atomic.Int32
	fs := make([]func(), 17)
	for i := range fs {
		fs[i] = func() { count.Add(1) }
	}
	DoN(fs...)
	if count.Load() != 17 {
		t.Fatalf("DoN ran %d of 17", count.Load())
	}
	DoN() // no-op must not hang
	DoN(func() { count.Add(1) })
	if count.Load() != 18 {
		t.Fatalf("DoN single = %d", count.Load())
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 4097} {
		for _, grain := range []int{0, 1, 7, 4096} {
			b := Blocks(n, grain)
			if b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("Blocks(%d,%d) endpoints: %v", n, grain, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] && n > 0 {
					t.Fatalf("Blocks(%d,%d) non-increasing: %v", n, grain, b)
				}
			}
		}
	}
}

func TestNestedParallelism(t *testing.T) {
	// A parallel loop spawning parallel loops must not deadlock and must
	// cover the full 2-D space.
	n, m := 64, 64
	seen := make([]int32, n*m)
	For(n, 1, func(i int) {
		For(m, 8, func(j int) {
			atomic.AddInt32(&seen[i*m+j], 1)
		})
	})
	for idx, c := range seen {
		if c != 1 {
			t.Fatalf("cell %d covered %d times", idx, c)
		}
	}
}

func BenchmarkForRangeOverhead(b *testing.B) {
	x := make([]int64, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForRange(len(x), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				x[j]++
			}
		})
	}
}

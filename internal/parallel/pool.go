package parallel

import (
	"sync"
	"sync/atomic"
	"time"
)

// defaultIdleTimeout is how long a pool worker stays parked with no work
// before it exits. Idle pools therefore decay to zero goroutines: an engine
// that is abandoned without Close leaks nothing, and a serving pool that
// sees a gap between requests pays one goroutine re-spawn per worker on the
// next burst — noise at request granularity. Tests shorten it through
// pool.idle to observe the decay quickly.
const defaultIdleTimeout = 250 * time.Millisecond

// task is one published unit of parallel work: either a chunked loop over
// [0, n) (body != nil) or a list of independent functions (funcs). Workers
// and the submitting goroutine claim blocks with the atomic next counter —
// the same dynamic load balancing the spawn-per-call scheduler had — and
// every executed block signals the WaitGroup, so the submitter joins through
// an atomic counter without allocating a channel.
type task struct {
	next   atomic.Int64 // next unclaimed block index
	blocks int64
	n      int
	grain  int
	body   func(lo, hi int) // loop task
	funcs  []func()         // fork-join task (Do/DoN); used when body == nil
	wg     sync.WaitGroup   // counts unfinished blocks
}

// run claims and executes blocks until the task is exhausted. It is called
// by pool workers and by the submitting goroutine alike; the submitter's
// call is what makes the pool deadlock-free under nesting — a loop always
// completes even if no worker ever helps.
func (t *task) run() {
	for {
		b := t.next.Add(1) - 1
		if b >= t.blocks {
			return
		}
		t.exec(b)
	}
}

// exec runs block b. wg.Done is deferred so a panicking body cannot strand
// other participants in their join.
func (t *task) exec(b int64) {
	defer t.wg.Done()
	if t.body != nil {
		lo := int(b) * t.grain
		hi := lo + t.grain
		if hi > t.n {
			hi = t.n
		}
		t.body(lo, hi)
		return
	}
	t.funcs[b]()
}

// waiter is one parked worker: a 1-buffered wake channel the pool sends to
// after popping the waiter from its stack, so wakeups are targeted (no
// thundering herd) and a token can never go stale — a waiter is only sent
// to while it is off the stack.
type waiter struct {
	ch chan struct{}
}

// pool is the persistent worker set behind a Scheduler and all of its
// Attach children. Workers are spawned lazily on first demand, park on
// per-worker channels between tasks, and exit after idleTimeout with no
// work, so an unused pool costs nothing and an abandoned one decays to
// zero goroutines.
type pool struct {
	mu      sync.Mutex
	tasks   []*task   // published tasks that may still have unclaimed blocks
	waiters []*waiter // parked workers, top of stack woken first (warm stacks)
	spawned int       // live worker goroutines
	limit   int       // max worker goroutines (scheduler workers - 1)
	closed  bool
	idle    time.Duration
}

func newPool(limit int) *pool {
	if limit < 0 {
		limit = 0
	}
	return &pool{limit: limit, idle: defaultIdleTimeout}
}

// setLimit resizes the pool. Growth takes effect on the next submit; excess
// workers after a shrink exit when they next look for work.
func (p *pool) setLimit(limit int) {
	if limit < 0 {
		limit = 0
	}
	p.mu.Lock()
	p.limit = limit
	p.mu.Unlock()
}

// submit publishes t and recruits up to helpers workers for it: parked
// workers are woken through their channels, and the pool spawns new workers
// while under its limit. The submitting goroutine is expected to call t.run
// itself afterwards; submit never blocks and, on a closed pool, is a no-op
// (the submitter then drains the whole task inline).
func (p *pool) submit(t *task, helpers int) {
	if helpers <= 0 {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.tasks = append(p.tasks, t)
	for helpers > 0 && len(p.waiters) > 0 {
		w := p.waiters[len(p.waiters)-1]
		p.waiters[len(p.waiters)-1] = nil
		p.waiters = p.waiters[:len(p.waiters)-1]
		w.ch <- struct{}{} // 1-buffered and only sent while popped: never blocks
		helpers--
	}
	for helpers > 0 && p.spawned < p.limit {
		p.spawned++
		go p.worker()
		helpers--
	}
	p.mu.Unlock()
}

// retire removes t from the published list once its claim counter is
// exhausted. Idempotent: pickLocked may already have pruned it.
func (p *pool) retire(t *task) {
	p.mu.Lock()
	for i, x := range p.tasks {
		if x == t {
			last := len(p.tasks) - 1
			p.tasks[i] = p.tasks[last]
			p.tasks[last] = nil
			p.tasks = p.tasks[:last]
			break
		}
	}
	p.mu.Unlock()
}

// pickLocked returns a published task with unclaimed blocks, pruning
// exhausted ones as it scans. Caller holds p.mu.
func (p *pool) pickLocked() *task {
	for i := 0; i < len(p.tasks); {
		t := p.tasks[i]
		if t.next.Load() < t.blocks {
			return t
		}
		last := len(p.tasks) - 1
		p.tasks[i] = p.tasks[last]
		p.tasks[last] = nil
		p.tasks = p.tasks[:last]
	}
	return nil
}

// close parks the pool permanently: parked workers are woken to exit, no
// new workers spawn, and subsequent submits are no-ops (loops then run
// entirely on their submitting goroutines). Workers busy on a task finish
// it before exiting.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, w := range p.waiters {
		w.ch <- struct{}{}
	}
	p.waiters = nil
	p.mu.Unlock()
}

// workerCount reports live worker goroutines (for tests and stats).
func (p *pool) workerCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spawned
}

// worker is the body of one pool goroutine: claim work while any is
// published, otherwise park on a private channel; exit when the pool is
// closed, shrunk below the current population, or idle past the timeout.
func (p *pool) worker() {
	w := &waiter{ch: make(chan struct{}, 1)}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	p.mu.Lock()
	for {
		if t := p.pickLocked(); t != nil {
			p.mu.Unlock()
			t.run()
			p.mu.Lock()
			continue
		}
		if p.closed || p.spawned > p.limit {
			p.spawned--
			p.mu.Unlock()
			return
		}
		// Park. The waiter is pushed under the lock, so any submit that
		// follows sees it and wakes it through its channel; there is no
		// window for a lost wakeup.
		p.waiters = append(p.waiters, w)
		idle := p.idle
		p.mu.Unlock()

		timer.Reset(idle)
		select {
		case <-w.ch:
			if !timer.Stop() {
				<-timer.C
			}
			p.mu.Lock()
		case <-timer.C:
			p.mu.Lock()
			if p.removeWaiterLocked(w) {
				// Timed out while still parked: exit unless work appeared
				// in the race window (then loop around and take it).
				if p.pickLocked() == nil {
					p.spawned--
					p.mu.Unlock()
					return
				}
				continue
			}
			// A submit popped us concurrently with the timeout: its wake
			// token is in flight (or already buffered) — consume it so the
			// channel is clean before the next park.
			p.mu.Unlock()
			<-w.ch
			p.mu.Lock()
		}
	}
}

// removeWaiterLocked removes w from the parked stack, reporting whether it
// was still there. Caller holds p.mu.
func (p *pool) removeWaiterLocked(w *waiter) bool {
	for i, x := range p.waiters {
		if x == w {
			last := len(p.waiters) - 1
			p.waiters[i] = p.waiters[last]
			p.waiters[last] = nil
			p.waiters = p.waiters[:last]
			return true
		}
	}
	return false
}

package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNestedForRangeInsideForRange drives two levels of ForRange on one
// scheduler with small grains so inner loops really publish tasks while
// outer blocks hold the pool's workers. Every (i, j) cell must be covered
// exactly once and the call must not deadlock.
func TestNestedForRangeInsideForRange(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		s := New(p)
		const n, m = 48, 512
		seen := make([]int32, n*m)
		s.ForRange(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.ForRange(m, 32, func(jlo, jhi int) {
					for j := jlo; j < jhi; j++ {
						atomic.AddInt32(&seen[i*m+j], 1)
					}
				})
			}
		})
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: cell %d covered %d times", p, idx, c)
			}
		}
		s.Close()
	}
}

// TestDeepDoRecursion forks a full binary tree of Do calls (the shape of
// the parallel sorts) deep enough that lazy reclaiming must kick in on a
// small pool.
func TestDeepDoRecursion(t *testing.T) {
	s := New(4)
	defer s.Close()
	var leaves atomic.Int64
	var walk func(depth int)
	walk = func(depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		s.Do(func() { walk(depth - 1) }, func() { walk(depth - 1) })
	}
	walk(12)
	if got := leaves.Load(); got != 1<<12 {
		t.Fatalf("leaves = %d, want %d", got, 1<<12)
	}
}

// TestConcurrentIndependentLoopsOneScheduler issues many simultaneous
// independent loops against a single shared scheduler; each submitter must
// drive its own loop to completion with the correct result.
func TestConcurrentIndependentLoopsOneScheduler(t *testing.T) {
	s := New(4)
	defer s.Close()
	const loops = 16
	var wg sync.WaitGroup
	for l := 0; l < loops; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				n := 2000 + 137*l
				var sum atomic.Int64
				s.ForRange(n, 64, func(lo, hi int) {
					local := int64(0)
					for i := lo; i < hi; i++ {
						local += int64(i)
					}
					sum.Add(local)
				})
				if want := int64(n) * int64(n-1) / 2; sum.Load() != want {
					t.Errorf("loop %d iter %d: sum %d, want %d", l, iter, sum.Load(), want)
					return
				}
			}
		}(l)
	}
	wg.Wait()
}

// TestAttachChildrenShareParentPool checks the lifecycle contract: Attach
// children run on the parent's pool (no per-call worker set), including
// children created and used while a parent loop is in flight.
func TestAttachChildrenShareParentPool(t *testing.T) {
	s := New(4)
	defer s.Close()
	if child := s.Attach(context.Background()); child.pool != s.pool {
		t.Fatal("Attach child does not share the parent's pool")
	}

	// Children attached and driven from inside a running parent loop.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var total atomic.Int64
	s.ForRange(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			child := s.Attach(ctx)
			child.ForRange(1000, 50, func(jlo, jhi int) {
				total.Add(int64(jhi - jlo))
			})
		}
	})
	if total.Load() != 8*1000 {
		t.Fatalf("children covered %d elements, want %d", total.Load(), 8*1000)
	}
}

// TestAttachChildObservesCancelDuringParentLoop runs a child under a
// cancelled context inside a parent loop: the child's Poll must unwind with
// the context error while the parent loop keeps working.
func TestAttachChildObservesCancelDuringParentLoop(t *testing.T) {
	s := New(4)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var unwound atomic.Int64
	s.ForRange(6, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			child := s.Attach(ctx)
			err := func() (err error) {
				defer RecoverStop(&err)
				child.Poll()
				return nil
			}()
			if err != nil {
				unwound.Add(1)
			}
		}
	})
	if unwound.Load() != 6 {
		t.Fatalf("%d of 6 children observed cancellation", unwound.Load())
	}
}

// TestCloseIsIdempotentAndDegradesInline verifies Close twice is safe, that
// loops after Close still produce correct results (inline), and that Close
// on an Attach child leaves the parent's pool alive.
func TestCloseIsIdempotentAndDegradesInline(t *testing.T) {
	s := New(4)
	s.Close()
	s.Close()
	var sum atomic.Int64
	s.ForRange(5000, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if want := int64(5000) * 4999 / 2; sum.Load() != want {
		t.Fatalf("post-Close sum = %d, want %d", sum.Load(), want)
	}
	var a, b atomic.Bool
	s.Do(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatal("post-Close Do dropped a branch")
	}

	parent := New(4)
	defer parent.Close()
	child := parent.Attach(context.Background())
	child.Close() // no-op: the pool belongs to parent
	var count atomic.Int64
	parent.For(4000, 64, func(i int) { count.Add(1) })
	if count.Load() != 4000 {
		t.Fatalf("parent loop after child Close: %d of 4000", count.Load())
	}
}

// TestPoolWorkersAutoParkAfterIdle shortens the idle timeout and checks the
// pool decays to zero goroutines with no Close, then revives on demand.
func TestPoolWorkersAutoParkAfterIdle(t *testing.T) {
	s := New(4)
	s.pool.idle = 20 * time.Millisecond
	var count atomic.Int64
	s.For(100000, 64, func(i int) { count.Add(1) })
	if count.Load() != 100000 {
		t.Fatalf("loop covered %d", count.Load())
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.PoolWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool still has %d workers after idle timeout", s.PoolWorkers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The pool must revive lazily after decaying.
	count.Store(0)
	s.For(100000, 64, func(i int) { count.Add(1) })
	if count.Load() != 100000 {
		t.Fatalf("revived loop covered %d", count.Load())
	}
	s.Close()
}

// TestSetWorkersShrinksPool lowers the worker count and checks the surplus
// pool workers drain away (they exit when next looking for work).
func TestSetWorkersShrinksPool(t *testing.T) {
	s := New(8)
	s.pool.idle = 20 * time.Millisecond
	var count atomic.Int64
	s.For(200000, 64, func(i int) { count.Add(1) })
	s.SetWorkers(2)
	deadline := time.Now().Add(5 * time.Second)
	for s.PoolWorkers() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pool still has %d workers after SetWorkers(2)", s.PoolWorkers())
		}
		var c atomic.Int64
		s.For(1000, 100, func(i int) { c.Add(1) }) // nudge workers to rescan
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
}

// TestDoNClaimsEverythingWithBusyPool saturates the pool with a long loop
// while issuing DoN from another goroutine: with no free workers the
// submitter must claim every function itself.
func TestDoNClaimsEverythingWithBusyPool(t *testing.T) {
	s := New(2)
	defer s.Close()
	release := make(chan struct{})
	var outer sync.WaitGroup
	outer.Add(1)
	go func() {
		defer outer.Done()
		s.ForRange(2, 1, func(lo, hi int) {
			<-release
		})
	}()
	var ran atomic.Int32
	fs := make([]func(), 9)
	for i := range fs {
		fs[i] = func() { ran.Add(1) }
	}
	s.DoN(fs...) // must complete while the pool worker is blocked above
	if ran.Load() != 9 {
		t.Fatalf("DoN ran %d of 9 with a busy pool", ran.Load())
	}
	close(release)
	outer.Wait()
}

// TestCancellationPromptUnderPoolLoad is the GOMAXPROCS=1 starvation
// regression: a submitter/worker pair handing work off through direct
// wakeups can monopolize the processor, so the goroutine calling cancel()
// never runs and a round loop that only exits via Poll spins forever.
// Poll's yield bounds cancellation latency at a few rounds; without it this
// test runs into its 30-second guard.
func TestCancellationPromptUnderPoolLoad(t *testing.T) {
	s := New(2)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	child := s.Attach(ctx)
	x := make([]int64, 100_000)
	start := time.Now()
	err := func() (err error) {
		defer RecoverStop(&err)
		for { // round loop: exits only through Poll's unwind
			child.ForRange(len(x), 4096, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x[i]++
				}
			})
			child.Poll()
			if time.Since(start) > 30*time.Second {
				return nil
			}
		}
	}()
	if err == nil {
		t.Fatalf("cancellation never observed after %v of round loops", time.Since(start))
	}
}

// TestPanickingBodyUnpublishesTask: a body panic on the submitting
// goroutine (recoverable by callers, e.g. the serve layer's build-panic
// recovery) must not strand the published task in the shared pool, where a
// later loop's workers would execute its leftover blocks against abandoned
// state. The pool's only worker is pinned by a blocker loop so every block
// of the panicking loop runs on the submitter.
func TestPanickingBodyUnpublishesTask(t *testing.T) {
	s := New(2)
	defer s.Close()
	release := make(chan struct{})
	var entered atomic.Int32
	var outer sync.WaitGroup
	outer.Add(1)
	go func() {
		defer outer.Done()
		s.ForRange(2, 1, func(lo, hi int) {
			entered.Add(1)
			<-release
		})
	}()
	for entered.Load() != 2 { // submitter + the one pool worker both pinned
		time.Sleep(time.Millisecond)
	}

	recovered := func() (r any) {
		defer func() { r = recover() }()
		s.ForRange(1000, 10, func(lo, hi int) { panic("boom") })
		return nil
	}()
	if recovered != "boom" {
		t.Fatalf("recovered %v, want the body's panic", recovered)
	}
	// The blocker task may legitimately still be listed (it is in flight,
	// fully claimed); stale means a task a worker could still claim from.
	s.pool.mu.Lock()
	stale := 0
	for _, pt := range s.pool.tasks {
		if pt.next.Load() < pt.blocks {
			stale++
		}
	}
	s.pool.mu.Unlock()
	if stale != 0 {
		t.Fatalf("%d claimable tasks left published after a panicking loop", stale)
	}

	close(release)
	outer.Wait()
	var count atomic.Int64
	s.For(5000, 64, func(i int) { count.Add(1) }) // pool must still work
	if count.Load() != 5000 {
		t.Fatalf("post-panic loop covered %d of 5000", count.Load())
	}
}

package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSchedulerIsolatedWorkerCounts(t *testing.T) {
	a := New(1)
	b := New(6)
	if a.Workers() != 1 || b.Workers() != 6 {
		t.Fatalf("workers: %d, %d", a.Workers(), b.Workers())
	}
	if prev := b.SetWorkers(3); prev != 6 {
		t.Fatalf("SetWorkers returned %d, want 6", prev)
	}
	if a.Workers() != 1 {
		t.Fatal("SetWorkers on one scheduler affected another")
	}
	if Default.Workers() < 1 {
		t.Fatal("Default has no workers")
	}
}

func TestSchedulerClampsToOneWorker(t *testing.T) {
	if New(-3).Workers() != 1 {
		t.Fatal("New(-3) did not clamp to 1")
	}
	s := New(4)
	s.SetWorkers(0)
	if s.Workers() != 1 {
		t.Fatal("SetWorkers(0) did not clamp to 1")
	}
}

func TestSchedulerForRangeCoversAll(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		s := New(p)
		const n = 10000
		var sum atomic.Int64
		s.ForRange(n, 64, func(lo, hi int) {
			local := int64(0)
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		if want := int64(n) * (n - 1) / 2; sum.Load() != want {
			t.Fatalf("p=%d: sum %d, want %d", p, sum.Load(), want)
		}
	}
}

func TestSchedulerFixedGrain(t *testing.T) {
	s := NewWithGrain(4, 100)
	bounds := s.Blocks(1000, 0)
	if len(bounds) != 11 {
		t.Fatalf("fixed grain 100 over 1000 items: %d bounds, want 11", len(bounds))
	}
	// An explicit grain still wins over the scheduler default.
	bounds = s.Blocks(1000, 500)
	if len(bounds) != 3 {
		t.Fatalf("explicit grain 500: %d bounds, want 3", len(bounds))
	}
}

func TestConcurrentSchedulersDontInterfere(t *testing.T) {
	var wg sync.WaitGroup
	for _, p := range []int{1, 2, 4, 8} {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := New(p)
			for iter := 0; iter < 20; iter++ {
				var count atomic.Int64
				s.For(5000, 128, func(i int) { count.Add(1) })
				if count.Load() != 5000 {
					t.Errorf("p=%d: %d iterations", p, count.Load())
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestAttachPollPanicsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(2).Attach(ctx)
	s.Poll() // not cancelled yet: must not panic
	cancel()
	err := func() (err error) {
		defer RecoverStop(&err)
		s.Poll()
		return nil
	}()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAttachBackgroundIsNoop(t *testing.T) {
	s := New(3).Attach(context.Background())
	if s.Workers() != 3 {
		t.Fatalf("Attach lost worker count: %d", s.Workers())
	}
	s.Poll() // no signal attached: never panics
	var nilCtxChild *Scheduler = New(2).Attach(nil)
	nilCtxChild.Poll()
}

func TestRecoverStopRepanicsForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	var err error
	func() {
		defer RecoverStop(&err)
		panic("boom")
	}()
}

func TestPackageWrappersUseDefault(t *testing.T) {
	old := SetWorkers(2)
	defer SetWorkers(old)
	if Workers() != Default.Workers() {
		t.Fatal("package Workers diverges from Default")
	}
	var count atomic.Int64
	For(1000, 0, func(i int) { count.Add(1) })
	if count.Load() != 1000 {
		t.Fatalf("package For ran %d iterations", count.Load())
	}
}

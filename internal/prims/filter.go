package prims

import "repro/internal/parallel"

// Filter returns the elements of a satisfying pred, preserving order, in O(n)
// work and O(log n) depth (per-block count, scan, per-block copy).
func Filter[T any](s *parallel.Scheduler, a []T, pred func(T) bool) []T {
	n := len(a)
	if n == 0 {
		return nil
	}
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	counts := make([]int, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				c++
			}
		}
		counts[b] = c
	})
	total := ScanInPlace(s, counts)
	out := make([]T, total)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		o := counts[b]
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				out[o] = a[i]
				o++
			}
		}
	})
	return out
}

// FilterInto is Filter writing into out (which must be large enough); it
// returns the number of kept elements. out must not alias a.
func FilterInto[T any](s *parallel.Scheduler, a []T, out []T, pred func(T) bool) int {
	n := len(a)
	if n == 0 {
		return 0
	}
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	counts := make([]int, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				c++
			}
		}
		counts[b] = c
	})
	total := ScanInPlace(s, counts)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		o := counts[b]
		for i := lo; i < hi; i++ {
			if pred(a[i]) {
				out[o] = a[i]
				o++
			}
		}
	})
	return total
}

// PackIndex returns, in increasing order, the indices i in [0, n) for which
// pred(i) is true. It is the paper's pack over an implicit boolean sequence
// (used to turn dense frontiers back into sparse ones).
func PackIndex(s *parallel.Scheduler, n int, pred func(i int) bool) []uint32 {
	if n == 0 {
		return nil
	}
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	counts := make([]int, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := ScanInPlace(s, counts)
	out := make([]uint32, total)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		o := counts[b]
		for i := lo; i < hi; i++ {
			if pred(i) {
				out[o] = uint32(i)
				o++
			}
		}
	})
	return out
}

// MapFilter produces f(i) for each i in [0, n) where keep(i) is true, in
// index order. It fuses a map with a pack so callers avoid materializing the
// dense intermediate.
func MapFilter[T any](s *parallel.Scheduler, n int, keep func(i int) bool, f func(i int) T) []T {
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	counts := make([]int, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[b] = c
	})
	total := ScanInPlace(s, counts)
	out := make([]T, total)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		o := counts[b]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[o] = f(i)
				o++
			}
		}
	})
	return out
}

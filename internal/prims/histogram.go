package prims

import (
	"repro/internal/atomics"
	"repro/internal/parallel"
)

// This file implements the paper's §5 "work-efficient histogram". The
// Histogram primitive takes a sequence of keys and computes, for each
// distinct key, the number of occurrences — the operation k-core peeling
// uses to count edges removed from each remaining vertex. The naive
// implementation fetch-and-adds a per-key counter and suffers heavy
// contention on high-degree vertices; the work-efficient version avoids
// contention by sorting keys in blocks (a radix partition) and reducing runs,
// touching each counter once. Both are provided so the Table 6 ablation can
// compare them.

// HistogramAtomic adds 1 to counts[k] for every k in keys using
// fetch-and-add. counts must be zeroed by the caller and have length greater
// than every key. This is the contended baseline of Table 6's
// "k-core (fetch-and-add)" row.
func HistogramAtomic(s *parallel.Scheduler, keys []uint32, counts []uint32) {
	s.ForRange(len(keys), 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomics.FetchAndAdd32(&counts[keys[i]], 1)
		}
	})
}

// Histogram returns the distinct keys of the input in sorted order together
// with their multiplicities, in O(n) work per radix pass and O(log n)
// contention-free depth. keyBits bounds the key width (use BitsFor(maxKey)).
func Histogram(s *parallel.Scheduler, keys []uint32, keyBits int) (ids []uint32, counts []uint32) {
	n := len(keys)
	if n == 0 {
		return nil, nil
	}
	sorted := make([]uint64, n)
	s.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sorted[i] = uint64(keys[i])
		}
	})
	RadixSortU64(s, sorted, keyBits)
	// Boundaries of equal-key runs.
	starts := PackIndex(s, n, func(i int) bool {
		return i == 0 || sorted[i] != sorted[i-1]
	})
	k := len(starts)
	ids = make([]uint32, k)
	counts = make([]uint32, k)
	s.ForRange(k, 0, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			start := int(starts[j])
			end := n
			if j+1 < k {
				end = int(starts[j+1])
			}
			ids[j] = uint32(sorted[start])
			counts[j] = uint32(end - start)
		}
	})
	return ids, counts
}

// HistogramApply computes the histogram of keys and invokes fn(key, count)
// once per distinct key, in parallel. It is the paper's HistogramFilter
// shape: fn typically updates per-vertex state and decides whether the
// vertex's bucket changed, saving a write per filtered-out pair.
func HistogramApply(s *parallel.Scheduler, keys []uint32, keyBits int, fn func(key, count uint32)) {
	ids, counts := Histogram(s, keys, keyBits)
	s.ForRange(len(ids), 512, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			fn(ids[j], counts[j])
		}
	})
}

// HistogramSum aggregates weighted pairs: for every (keys[i], vals[i]) it
// sums vals per distinct key. Used where the generalized (K,T) histogram of
// the paper is needed rather than pure counting.
func HistogramSum(s *parallel.Scheduler, keys []uint32, vals []uint32, keyBits int) (ids []uint32, sums []uint64) {
	n := len(keys)
	if n == 0 {
		return nil, nil
	}
	if len(vals) != n {
		panic("prims: HistogramSum length mismatch")
	}
	packed := make([]uint64, n)
	s.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			packed[i] = uint64(keys[i])<<32 | uint64(vals[i])
		}
	})
	// Sorting by the high 32 bits groups equal keys; the payload rides along.
	RadixSortU64(s, packed, keyBits+32)
	starts := PackIndex(s, n, func(i int) bool {
		return i == 0 || packed[i]>>32 != packed[i-1]>>32
	})
	k := len(starts)
	ids = make([]uint32, k)
	sums = make([]uint64, k)
	s.ForRange(k, 0, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			start := int(starts[j])
			end := n
			if j+1 < k {
				end = int(starts[j+1])
			}
			var s uint64
			for i := start; i < end; i++ {
				s += packed[i] & 0xffffffff
			}
			ids[j] = uint32(packed[start] >> 32)
			sums[j] = s
		}
	})
	return ids, sums
}

package prims

// IntersectCount returns |a ∩ b| for sorted, duplicate-free slices. It is
// the sequential intersection the paper uses inside triangle counting's
// outer parallel loop ("we intersect directed adjacency lists sequentially,
// as there was sufficient parallelism in the outer parallel-loop"). For very
// skewed sizes it gallops through the larger list, giving
// O(|a| log(1 + |b|/|a|)) work like the paper's compressed intersection.
func IntersectCount(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	// Galloping pays off when b is much larger than a.
	if len(b) >= 32*len(a) {
		return gallopCount(a, b)
	}
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av == bv:
			count++
			i++
			j++
		case av < bv:
			i++
		default:
			j++
		}
	}
	return count
}

func gallopCount(a, b []uint32) int {
	count := 0
	lo := 0
	for _, v := range a {
		// Exponential search for v in b[lo:].
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < v {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in (lo-?, hi]. lo currently > last position < v.
		l, r := lo, hi
		for l < r {
			m := (l + r) / 2
			if b[m] < v {
				l = m + 1
			} else {
				r = m
			}
		}
		if l < len(b) && b[l] == v {
			count++
			lo = l + 1
		} else {
			lo = l
		}
		if lo >= len(b) {
			break
		}
	}
	return count
}

// SearchSorted returns the first index i in a with a[i] >= v (len(a) if none).
func SearchSorted(a []uint32, v uint32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		m := (lo + hi) / 2
		if a[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// SearchSorted64 returns the first index i in a with a[i] >= v.
func SearchSorted64(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		m := (lo + hi) / 2
		if a[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

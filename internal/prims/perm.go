package prims

import (
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// RandomPermutation returns a deterministic pseudo-random permutation of
// [0, n) for the given seed. It assigns each index a hashed 32-bit key and
// radix sorts (key, index) pairs; ties between equal keys keep index order,
// which only perturbs uniformity negligibly at graph scales. The paper's
// randomized algorithms (SCC batching, MIS/MM priorities) all start from such
// a permutation, and it notes that connectivity "always generates a random
// permutation, even on the first round".
func RandomPermutation(s *parallel.Scheduler, n int, seed uint64) []uint32 {
	if n <= 0 {
		return nil
	}
	packed := make([]uint64, n)
	s.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			packed[i] = uint64(xrand.Hash32(seed, uint64(i)))<<32 | uint64(uint32(i))
		}
	})
	RadixSortU64(s, packed, 64)
	perm := make([]uint32, n)
	s.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			perm[i] = uint32(packed[i])
		}
	})
	return perm
}

// InversePermutation returns inv with inv[perm[i]] = i.
func InversePermutation(s *parallel.Scheduler, perm []uint32) []uint32 {
	inv := make([]uint32, len(perm))
	s.ForRange(len(perm), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inv[perm[i]] = uint32(i)
		}
	})
	return inv
}

package prims

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

func TestScanMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 1000, 1 << 15} {
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(i%7 - 3)
		}
		out := make([]int64, n)
		total := Scan(parallel.Default, a, out)
		var s int64
		for i := 0; i < n; i++ {
			if out[i] != s {
				t.Fatalf("n=%d: out[%d]=%d want %d", n, i, out[i], s)
			}
			s += a[i]
		}
		if total != s {
			t.Fatalf("n=%d: total=%d want %d", n, total, s)
		}
	}
}

func TestScanInPlace(t *testing.T) {
	a := []int{5, 3, 1, 2}
	total := ScanInPlace(parallel.Default, a)
	want := []int{0, 5, 8, 9}
	if total != 11 || !slices.Equal(a, want) {
		t.Fatalf("got %v total %d", a, total)
	}
}

func TestScanInclusive(t *testing.T) {
	a := []uint32{1, 2, 3, 4}
	out := make([]uint32, 4)
	total := ScanInclusive(parallel.Default, a, out)
	if total != 10 || !slices.Equal(out, []uint32{1, 3, 6, 10}) {
		t.Fatalf("got %v total %d", out, total)
	}
}

func TestScanQuickProperty(t *testing.T) {
	err := quick.Check(func(a []int32) bool {
		in := make([]int64, len(a))
		for i, v := range a {
			in[i] = int64(v)
		}
		out := make([]int64, len(in))
		total := Scan(parallel.Default, in, out)
		var s int64
		for i := range in {
			if out[i] != s {
				return false
			}
			s += in[i]
		}
		return total == s
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndSum(t *testing.T) {
	a := make([]int, 100000)
	for i := range a {
		a[i] = i
	}
	if got := Sum(parallel.Default, a); got != 100000*99999/2 {
		t.Fatalf("Sum = %d", got)
	}
	if got := Max(parallel.Default, a); got != 99999 {
		t.Fatalf("Max = %d", got)
	}
	if got := Min(parallel.Default, a); got != 0 {
		t.Fatalf("Min = %d", got)
	}
	if got := Reduce(parallel.Default, []int{}, -1, func(x, y int) int { return x + y }); got != -1 {
		t.Fatalf("Reduce empty = %d", got)
	}
}

func TestMapReduceAndCount(t *testing.T) {
	n := 12345
	got := MapReduce(parallel.Default, n, 0, func(i int) int { return i * 2 }, func(x, y int) int { return x + y })
	if got != n*(n-1) {
		t.Fatalf("MapReduce = %d want %d", got, n*(n-1))
	}
	c := Count(parallel.Default, n, func(i int) bool { return i%3 == 0 })
	want := (n + 2) / 3
	if c != want {
		t.Fatalf("Count = %d want %d", c, want)
	}
}

func TestFilterMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 13, 100000} {
		a := make([]uint32, n)
		for i := range a {
			a[i] = uint32(i * 7 % 256)
		}
		pred := func(v uint32) bool { return v%2 == 0 }
		got := Filter(parallel.Default, a, pred)
		var want []uint32
		for _, v := range a {
			if pred(v) {
				want = append(want, v)
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: Filter mismatch (%d vs %d elements)", n, len(got), len(want))
		}
	}
}

func TestFilterInto(t *testing.T) {
	a := []int{1, 2, 3, 4, 5, 6}
	out := make([]int, 6)
	k := FilterInto(parallel.Default, a, out, func(v int) bool { return v > 3 })
	if k != 3 || !slices.Equal(out[:k], []int{4, 5, 6}) {
		t.Fatalf("FilterInto got %v k=%d", out[:k], k)
	}
}

func TestPackIndex(t *testing.T) {
	got := PackIndex(parallel.Default, 10, func(i int) bool { return i%3 == 0 })
	if !slices.Equal(got, []uint32{0, 3, 6, 9}) {
		t.Fatalf("PackIndex = %v", got)
	}
	if PackIndex(parallel.Default, 0, func(int) bool { return true }) != nil {
		t.Fatal("PackIndex(parallel.Default, 0) should be nil")
	}
}

func TestMapFilter(t *testing.T) {
	got := MapFilter(parallel.Default, 6, func(i int) bool { return i%2 == 1 }, func(i int) int { return i * i })
	if !slices.Equal(got, []int{1, 9, 25}) {
		t.Fatalf("MapFilter = %v", got)
	}
}

func TestRadixSortU64FullWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, 5000, 100000} {
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64()
		}
		want := slices.Clone(a)
		slices.Sort(want)
		RadixSortU64(parallel.Default, a, 64)
		if !slices.Equal(a, want) {
			t.Fatalf("n=%d: radix sort mismatch", n)
		}
	}
}

func TestRadixSortU64PartialBitsIsStable(t *testing.T) {
	// Sorting by the low 8 bits must keep equal-low-byte elements in input
	// order; encode original index in the high bits to verify.
	n := 10000
	a := make([]uint64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range a {
		a[i] = uint64(i)<<8 | uint64(rng.Intn(16))
	}
	RadixSortU64(parallel.Default, a, 8)
	for i := 1; i < n; i++ {
		lo0, lo1 := a[i-1]&0xff, a[i]&0xff
		if lo0 > lo1 {
			t.Fatalf("not sorted by low bits at %d", i)
		}
		if lo0 == lo1 && a[i-1]>>8 > a[i]>>8 {
			t.Fatalf("not stable at %d", i)
		}
	}
}

func TestRadixSortU32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]uint32, 30000)
	for i := range a {
		a[i] = rng.Uint32()
	}
	want := slices.Clone(a)
	slices.Sort(want)
	RadixSortU32(parallel.Default, a, 32)
	if !slices.Equal(a, want) {
		t.Fatal("RadixSortU32 mismatch")
	}
}

func TestRadixSortPairsCarriesPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 50000
	keys := make([]uint64, n)
	vals := make([]uint32, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1000))
		vals[i] = uint32(i)
	}
	orig := slices.Clone(keys)
	RadixSortPairs(parallel.Default, keys, vals, BitsFor(1000))
	if !IsSortedU64(keys) {
		t.Fatal("keys not sorted")
	}
	for i := range keys {
		if orig[vals[i]] != keys[i] {
			t.Fatalf("payload broken at %d", i)
		}
	}
	// Stability: equal keys keep increasing payload order.
	for i := 1; i < n; i++ {
		if keys[i-1] == keys[i] && vals[i-1] >= vals[i] {
			t.Fatalf("unstable at %d", i)
		}
	}
}

func TestRadixSortQuickProperty(t *testing.T) {
	err := quick.Check(func(a []uint64) bool {
		want := slices.Clone(a)
		slices.Sort(want)
		got := slices.Clone(a)
		RadixSortU64(parallel.Default, got, 64)
		return slices.Equal(got, want)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomPermutationIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 1000, 1 << 16} {
		p := RandomPermutation(parallel.Default, n, 42)
		if len(p) != n {
			t.Fatalf("len = %d want %d", len(p), n)
		}
		seen := make([]bool, n)
		for _, v := range p {
			if int(v) >= n || seen[v] {
				t.Fatalf("n=%d: not a permutation", n)
			}
			seen[v] = true
		}
	}
}

func TestRandomPermutationVariesWithSeed(t *testing.T) {
	a := RandomPermutation(parallel.Default, 1000, 1)
	b := RandomPermutation(parallel.Default, 1000, 2)
	if slices.Equal(a, b) {
		t.Fatal("different seeds gave identical permutations")
	}
	c := RandomPermutation(parallel.Default, 1000, 1)
	if !slices.Equal(a, c) {
		t.Fatal("same seed gave different permutations")
	}
}

func TestInversePermutation(t *testing.T) {
	p := RandomPermutation(parallel.Default, 5000, 7)
	inv := InversePermutation(parallel.Default, p)
	for i, v := range p {
		if inv[v] != uint32(i) {
			t.Fatalf("inverse broken at %d", i)
		}
	}
}

func TestIntersectCount(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want int
	}{
		{nil, nil, 0},
		{[]uint32{1, 2, 3}, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 2},
		{[]uint32{1, 5, 9}, []uint32{2, 6, 10}, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 3},
	}
	for i, c := range cases {
		if got := IntersectCount(c.a, c.b); got != c.want {
			t.Fatalf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

func TestIntersectCountGalloping(t *testing.T) {
	// Force the galloping path with very skewed sizes.
	big := make([]uint32, 100000)
	for i := range big {
		big[i] = uint32(i * 2)
	}
	small := []uint32{0, 2, 5, 100, 99999, 199998}
	want := 0
	for _, v := range small {
		if v%2 == 0 && int(v) <= 199998 {
			want++
		}
	}
	if got := IntersectCount(small, big); got != want {
		t.Fatalf("gallop got %d want %d", got, want)
	}
}

func TestIntersectQuickProperty(t *testing.T) {
	err := quick.Check(func(xs, ys []uint16) bool {
		a := dedupSorted(xs)
		b := dedupSorted(ys)
		want := 0
		set := map[uint32]bool{}
		for _, v := range a {
			set[v] = true
		}
		for _, v := range b {
			if set[v] {
				want++
			}
		}
		return IntersectCount(a, b) == want
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func dedupSorted(xs []uint16) []uint32 {
	out := make([]uint32, 0, len(xs))
	for _, v := range xs {
		out = append(out, uint32(v))
	}
	slices.Sort(out)
	return slices.Compact(out)
}

func TestSearchSorted(t *testing.T) {
	a := []uint32{2, 4, 4, 8}
	for _, c := range []struct{ v, want uint32 }{{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 3}, {9, 4}} {
		if got := SearchSorted(a, c.v); got != int(c.want) {
			t.Fatalf("SearchSorted(%d) = %d want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 100, 100000} {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(rng.Intn(500))
		}
		ids, counts := Histogram(parallel.Default, keys, BitsFor(500))
		want := map[uint32]uint32{}
		for _, k := range keys {
			want[k]++
		}
		if len(ids) != len(want) {
			t.Fatalf("n=%d: %d distinct keys, want %d", n, len(ids), len(want))
		}
		for i, id := range ids {
			if counts[i] != want[id] {
				t.Fatalf("n=%d: key %d count %d want %d", n, id, counts[i], want[id])
			}
			if i > 0 && ids[i-1] >= id {
				t.Fatalf("ids not sorted at %d", i)
			}
		}
	}
}

func TestHistogramAtomicMatchesHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint32, 50000)
	for i := range keys {
		keys[i] = uint32(rng.Intn(64)) // few bins: heavy contention path
	}
	dense := make([]uint32, 64)
	HistogramAtomic(parallel.Default, keys, dense)
	ids, counts := Histogram(parallel.Default, keys, 6)
	for i, id := range ids {
		if dense[id] != counts[i] {
			t.Fatalf("bin %d: atomic %d vs sorted %d", id, dense[id], counts[i])
		}
	}
}

func TestHistogramApply(t *testing.T) {
	keys := []uint32{3, 3, 3, 1, 2, 2}
	got := map[uint32]uint32{}
	HistogramApply(parallel.Default, keys, 2, func(k, c uint32) { got[k] = c })
	if got[3] != 3 || got[2] != 2 || got[1] != 1 || len(got) != 3 {
		t.Fatalf("HistogramApply = %v", got)
	}
}

func TestHistogramSum(t *testing.T) {
	keys := []uint32{5, 1, 5, 1, 5}
	vals := []uint32{10, 1, 20, 2, 30}
	ids, sums := HistogramSum(parallel.Default, keys, vals, 3)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 5 || sums[0] != 3 || sums[1] != 60 {
		t.Fatalf("HistogramSum ids=%v sums=%v", ids, sums)
	}
}

func TestApproxThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 1000000
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	for _, k := range []int{1, 100, n / 2, n - 1, n, 2 * n} {
		pivot := ApproxThreshold(parallel.Default, keys, k, 11)
		cnt := 0
		for _, v := range keys {
			if v <= pivot {
				cnt++
			}
		}
		wantAtLeast := k
		if wantAtLeast > n {
			wantAtLeast = n
		}
		if cnt < wantAtLeast {
			t.Fatalf("k=%d: pivot selects %d < %d", k, cnt, wantAtLeast)
		}
		// Must not wildly overshoot: the sampling slack is ~s/64 of the
		// input plus sampling noise, so allow 4k + n/32 + constant.
		if k < n && cnt > 4*k+n/32+1000 {
			t.Fatalf("k=%d: pivot selects %d, far more than requested", k, cnt)
		}
	}
}

func TestPrimsUnderSingleWorker(t *testing.T) {
	old := parallel.SetWorkers(1)
	defer parallel.SetWorkers(old)
	a := make([]int, 10000)
	for i := range a {
		a[i] = 1
	}
	if Sum(parallel.Default, a) != 10000 {
		t.Fatal("Sum wrong with 1 worker")
	}
	out := make([]int, len(a))
	if Scan(parallel.Default, a, out) != 10000 || out[9999] != 9999 {
		t.Fatal("Scan wrong with 1 worker")
	}
	p := RandomPermutation(parallel.Default, 1000, 3)
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	for i, v := range p {
		if v != uint32(i) {
			t.Fatal("permutation wrong with 1 worker")
		}
	}
}

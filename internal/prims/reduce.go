package prims

import "repro/internal/parallel"

// Reduce combines the elements of a with the associative function f starting
// from the identity id, in O(n) work and O(log n) depth.
func Reduce[T any](s *parallel.Scheduler, a []T, id T, f func(T, T) T) T {
	n := len(a)
	if n == 0 {
		return id
	}
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	if nb == 1 {
		acc := id
		for _, v := range a {
			acc = f(acc, v)
		}
		return acc
	}
	partial := make([]T, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = f(acc, a[i])
		}
		partial[b] = acc
	})
	acc := id
	for _, v := range partial {
		acc = f(acc, v)
	}
	return acc
}

// Sum returns the sum of the elements of a.
func Sum[T Number](s *parallel.Scheduler, a []T) T {
	return Reduce(s, a, 0, func(x, y T) T { return x + y })
}

// MapReduce applies m to each index in [0, n) and reduces the results with f
// from identity id. It is the paper's map-reduce over an implicit sequence.
func MapReduce[T any](s *parallel.Scheduler, n int, id T, m func(i int) T, f func(T, T) T) T {
	if n == 0 {
		return id
	}
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	partial := make([]T, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = f(acc, m(i))
		}
		partial[b] = acc
	})
	acc := id
	for _, v := range partial {
		acc = f(acc, v)
	}
	return acc
}

// Max returns the maximum element of a; a must be non-empty.
func Max[T Number](s *parallel.Scheduler, a []T) T {
	return Reduce(s, a[1:], a[0], func(x, y T) T {
		if y > x {
			return y
		}
		return x
	})
}

// Min returns the minimum element of a; a must be non-empty.
func Min[T Number](s *parallel.Scheduler, a []T) T {
	return Reduce(s, a[1:], a[0], func(x, y T) T {
		if y < x {
			return y
		}
		return x
	})
}

// Count returns the number of indices i in [0, n) for which pred(i) is true.
func Count(s *parallel.Scheduler, n int, pred func(i int) bool) int {
	return MapReduce(s, n, 0, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	}, func(x, y int) int { return x + y })
}

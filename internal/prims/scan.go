// Package prims implements the work-efficient parallel primitives of the
// paper's §3 (scan, reduce, filter, pack) plus the sorting, histogramming,
// selection and permutation routines the algorithm implementations rely on.
// Every primitive has O(n) (or O(n log n) for sorting) work and low depth.
// Primitives are scheduler-scoped: each takes the *parallel.Scheduler it
// should run on as its first argument (pass parallel.Default for the
// process-wide pool) and degrades to a plain sequential loop on a
// one-worker scheduler.
package prims

import "repro/internal/parallel"

// Number covers the arithmetic element types primitives operate on.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Scan writes the exclusive prefix sums of a into out (out[i] = a[0] + ... +
// a[i-1], out[0] = 0) and returns the total sum. out must have len(a)
// elements and may alias a. Runs in O(n) work and O(log n) depth: per-block
// sums, a sequential scan over the (few) block sums, then per-block rewrite.
func Scan[T Number](s *parallel.Scheduler, a, out []T) T {
	n := len(a)
	if n == 0 {
		return 0
	}
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	if nb == 1 {
		return scanSeq(a, out, 0)
	}
	sums := make([]T, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		var s T
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		sums[b] = s
	})
	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	s.ForBlocks(bounds, func(b, lo, hi int) {
		scanSeq(a[lo:hi], out[lo:hi], sums[b])
	})
	return total
}

func scanSeq[T Number](a, out []T, carry T) T {
	s := carry
	for i, v := range a {
		out[i] = s
		s += v
	}
	return s
}

// ScanInclusive writes inclusive prefix sums into out and returns the total.
// Like Scan, a single-block input (sub-grain n or a one-worker scheduler)
// takes a plain sequential pass with no block machinery.
func ScanInclusive[T Number](s *parallel.Scheduler, a, out []T) T {
	n := len(a)
	if n == 0 {
		return 0
	}
	bounds := s.Blocks(n, 0)
	nb := len(bounds) - 1
	if nb == 1 {
		return scanInclSeq(a, out, 0)
	}
	sums := make([]T, nb)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		var s T
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		sums[b] = s
	})
	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	s.ForBlocks(bounds, func(b, lo, hi int) {
		scanInclSeq(a[lo:hi], out[lo:hi], sums[b])
	})
	return total
}

func scanInclSeq[T Number](a, out []T, carry T) T {
	s := carry
	for i, v := range a {
		s += v
		out[i] = s
	}
	return s
}

// ScanInPlace replaces a with its exclusive prefix sums and returns the total.
func ScanInPlace[T Number](s *parallel.Scheduler, a []T) T { return Scan(s, a, a) }

package prims

import (
	"slices"

	"repro/internal/parallel"

	"repro/internal/xrand"
)

// ApproxThreshold solves the paper's "approximate k'th smallest" problem used
// by the MSF and maximal-matching filtering steps: it returns a pivot value
// such that at least min(k, n) keys are <= pivot, while keeping the number of
// selected keys close to k in expectation. It samples, sorts the sample, and
// verifies the count, nudging the quantile upward on undershoot — O(n) work
// per verification pass and a constant number of passes with high
// probability.
func ApproxThreshold(s *parallel.Scheduler, keys []uint64, k int, seed uint64) uint64 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	if k >= n {
		return Max(s, keys)
	}
	if k < 1 {
		k = 1
	}
	sz := 2048
	if sz > n {
		sz = n
	}
	sample := make([]uint64, sz)
	for i := 0; i < sz; i++ {
		sample[i] = keys[xrand.Uniform(seed, uint64(i), uint64(n))]
	}
	slices.Sort(sample)
	// Target quantile with slack so the first guess usually overshoots k.
	idx := int(float64(sz)*float64(k)/float64(n)) + sz/64 + 2
	for {
		if idx >= sz {
			return Max(s, keys)
		}
		pivot := sample[idx]
		cnt := Count(s, n, func(i int) bool { return keys[i] <= pivot })
		if cnt >= k {
			return pivot
		}
		idx += sz / 8
	}
}

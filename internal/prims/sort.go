package prims

import (
	"math/bits"

	"repro/internal/parallel"
)

// The radix sorts below are parallel LSD counting sorts with 8-bit digits,
// modeled on the PBBS radix sort the paper's histogram builds on: each pass
// counts digit occurrences per block, computes per-(digit, block) offsets
// with a scan in digit-major order (which makes the pass stable), and
// scatters. Sorting k bits costs ceil(k/8) passes of O(n) work each.

const radixBits = 8
const radixBuckets = 1 << radixBits

// RadixSortU64 sorts a in place by its low `bitsWanted` bits (pass 64 for a
// full sort). Stable across passes, deterministic, parallel.
func RadixSortU64(s *parallel.Scheduler, a []uint64, bitsWanted int) {
	n := len(a)
	if n <= 1 {
		return
	}
	if bitsWanted <= 0 || bitsWanted > 64 {
		bitsWanted = 64
	}
	if n < 256 {
		insertionSortMasked(a, bitsWanted)
		return
	}
	passes := (bitsWanted + radixBits - 1) / radixBits
	buf := make([]uint64, n)
	src, dst := a, buf
	if n < 16384 {
		// Mid-size inputs sort sequentially: a counting-sort pass is ~4n
		// memory ops and parallel dispatch would dominate (round-based
		// algorithms like k-core sort one small batch per round).
		for p := 0; p < passes; p++ {
			radixPassSeq(src, dst, uint(p*radixBits))
			src, dst = dst, src
		}
	} else {
		for p := 0; p < passes; p++ {
			radixPassU64(s, src, dst, uint(p*radixBits))
			src, dst = dst, src
		}
	}
	if passes%2 == 1 {
		copy(a, buf)
	}
}

func radixPassSeq(src, dst []uint64, shift uint) {
	var counts [radixBuckets]int
	for _, v := range src {
		counts[(v>>shift)&(radixBuckets-1)]++
	}
	total := 0
	for r := 0; r < radixBuckets; r++ {
		c := counts[r]
		counts[r] = total
		total += c
	}
	for _, v := range src {
		r := (v >> shift) & (radixBuckets - 1)
		dst[counts[r]] = v
		counts[r]++
	}
}

func insertionSortMasked(a []uint64, bitsWanted int) {
	mask := ^uint64(0)
	if bitsWanted < 64 {
		mask = (uint64(1) << uint(bitsWanted)) - 1
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		k := v & mask
		j := i - 1
		for j >= 0 && a[j]&mask > k {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func radixPassU64(s *parallel.Scheduler, src, dst []uint64, shift uint) {
	n := len(src)
	bounds := s.Blocks(n, 4096)
	nb := len(bounds) - 1
	counts := make([]int, nb*radixBuckets)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := counts[b*radixBuckets : (b+1)*radixBuckets]
		for i := lo; i < hi; i++ {
			c[(src[i]>>shift)&(radixBuckets-1)]++
		}
	})
	// Digit-major scan: offsets for digit r precede digit r+1; within a
	// digit, earlier blocks precede later blocks, preserving stability.
	total := 0
	for r := 0; r < radixBuckets; r++ {
		for b := 0; b < nb; b++ {
			c := counts[b*radixBuckets+r]
			counts[b*radixBuckets+r] = total
			total += c
		}
	}
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := counts[b*radixBuckets : (b+1)*radixBuckets]
		for i := lo; i < hi; i++ {
			r := (src[i] >> shift) & (radixBuckets - 1)
			dst[c[r]] = src[i]
			c[r]++
		}
	})
}

// RadixSortU32 sorts a in place by its low bitsWanted bits.
func RadixSortU32(s *parallel.Scheduler, a []uint32, bitsWanted int) {
	n := len(a)
	if n <= 1 {
		return
	}
	if bitsWanted <= 0 || bitsWanted > 32 {
		bitsWanted = 32
	}
	wide := make([]uint64, n)
	s.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wide[i] = uint64(a[i])
		}
	})
	RadixSortU64(s, wide, bitsWanted)
	s.ForRange(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = uint32(wide[i])
		}
	})
}

// RadixSortPairs sorts keys (by low bitsWanted bits) and applies the same
// permutation to vals. Stable.
func RadixSortPairs(s *parallel.Scheduler, keys []uint64, vals []uint32, bitsWanted int) {
	n := len(keys)
	if n != len(vals) {
		panic("prims: RadixSortPairs length mismatch")
	}
	if n <= 1 {
		return
	}
	if bitsWanted <= 0 || bitsWanted > 64 {
		bitsWanted = 64
	}
	passes := (bitsWanted + radixBits - 1) / radixBits
	kbuf := make([]uint64, n)
	vbuf := make([]uint32, n)
	ks, kd := keys, kbuf
	vs, vd := vals, vbuf
	for p := 0; p < passes; p++ {
		radixPassPairs(s, ks, kd, vs, vd, uint(p*radixBits))
		ks, kd = kd, ks
		vs, vd = vd, vs
	}
	if passes%2 == 1 {
		copy(keys, kbuf)
		copy(vals, vbuf)
	}
}

func radixPassPairs(s *parallel.Scheduler, ksrc, kdst []uint64, vsrc, vdst []uint32, shift uint) {
	n := len(ksrc)
	bounds := s.Blocks(n, 4096)
	nb := len(bounds) - 1
	counts := make([]int, nb*radixBuckets)
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := counts[b*radixBuckets : (b+1)*radixBuckets]
		for i := lo; i < hi; i++ {
			c[(ksrc[i]>>shift)&(radixBuckets-1)]++
		}
	})
	total := 0
	for r := 0; r < radixBuckets; r++ {
		for b := 0; b < nb; b++ {
			c := counts[b*radixBuckets+r]
			counts[b*radixBuckets+r] = total
			total += c
		}
	}
	s.ForBlocks(bounds, func(b, lo, hi int) {
		c := counts[b*radixBuckets : (b+1)*radixBuckets]
		for i := lo; i < hi; i++ {
			r := (ksrc[i] >> shift) & (radixBuckets - 1)
			o := c[r]
			kdst[o] = ksrc[i]
			vdst[o] = vsrc[i]
			c[r]++
		}
	})
}

// BitsFor returns the number of bits needed to represent values in [0, n].
func BitsFor(n uint64) int {
	if n == 0 {
		return 1
	}
	return bits.Len64(n)
}

// IsSortedU64 reports whether a is non-decreasing.
func IsSortedU64(a []uint64) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}

// Package seqref provides simple sequential reference implementations
// ("oracles") of every problem in the benchmark. They are deliberately
// written with textbook algorithms structurally unrelated to the parallel
// implementations in internal/core, so agreement between the two is strong
// evidence of correctness. They favor clarity over speed and are used only
// in tests.
package seqref

import (
	"container/heap"
	"math"
	"slices"
	"sort"

	"repro/internal/graph"
)

const inf = ^uint32(0)

// BFS returns hop distances from src (inf when unreachable).
func BFS(g graph.Graph, src uint32) []uint32 {
	n := g.N()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.OutNgh(v, func(u uint32, _ int32) bool {
			if dist[u] == inf {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
			return true
		})
	}
	return dist
}

type pqItem struct {
	v uint32
	d int64
}
type pq []pqItem

func (p pq) Len() int           { return len(p) }
func (p pq) Less(i, j int) bool { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() any          { old := *p; x := old[len(old)-1]; *p = old[:len(old)-1]; return x }

// Dijkstra returns shortest-path distances from src under non-negative
// weights (math.MaxInt64 when unreachable).
func Dijkstra(g graph.Graph, src uint32) []int64 {
	n := g.N()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		g.OutNgh(it.v, func(u uint32, w int32) bool {
			if nd := it.d + int64(w); nd < dist[u] {
				dist[u] = nd
				heap.Push(h, pqItem{u, nd})
			}
			return true
		})
	}
	return dist
}

// BellmanFord returns shortest-path distances from src allowing negative
// weights; vertices reachable from a negative cycle get math.MinInt64. The
// second result reports whether such a cycle exists.
func BellmanFord(g graph.Graph, src uint32) ([]int64, bool) {
	n := g.N()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = math.MaxInt64
	}
	dist[src] = 0
	relax := func() bool {
		changed := false
		for v := 0; v < n; v++ {
			if dist[v] == math.MaxInt64 {
				continue
			}
			g.OutNgh(uint32(v), func(u uint32, w int32) bool {
				if nd := dist[v] + int64(w); nd < dist[u] {
					dist[u] = nd
					changed = true
				}
				return true
			})
		}
		return changed
	}
	for i := 0; i < n-1; i++ {
		if !relax() {
			return dist, false
		}
	}
	if !relax() {
		return dist, false
	}
	// Mark everything reachable from still-improving vertices as -inf.
	improving := []uint32{}
	old := slices.Clone(dist)
	relax()
	for v := 0; v < n; v++ {
		if dist[v] != old[v] {
			improving = append(improving, uint32(v))
		}
	}
	seen := make([]bool, n)
	for _, v := range improving {
		seen[v] = true
	}
	for len(improving) > 0 {
		v := improving[len(improving)-1]
		improving = improving[:len(improving)-1]
		dist[v] = math.MinInt64
		g.OutNgh(v, func(u uint32, _ int32) bool {
			if !seen[u] {
				seen[u] = true
				improving = append(improving, u)
			}
			return true
		})
	}
	return dist, true
}

// BC returns Brandes' single-source betweenness dependencies from src.
func BC(g graph.Graph, src uint32) []float64 {
	n := g.N()
	sigma := make([]float64, n)
	dist := make([]int32, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[src] = 1
	dist[src] = 0
	order := []uint32{src}
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		g.OutNgh(v, func(u uint32, _ int32) bool {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				order = append(order, u)
			}
			if dist[u] == dist[v]+1 {
				sigma[u] += sigma[v]
			}
			return true
		})
	}
	for qi := len(order) - 1; qi >= 0; qi-- {
		w := order[qi]
		g.OutNgh(w, func(u uint32, _ int32) bool {
			// u is a successor of w when it is one level deeper.
			if dist[u] >= 0 && dist[u] == dist[w]+1 {
				delta[w] += sigma[w] / sigma[u] * (1 + delta[u])
			}
			return true
		})
	}
	delta[src] = 0 // the source's dependency is zero by convention
	return delta
}

// UnionFind is a plain union-find over n items.
type UnionFind struct{ parent []uint32 }

// NewUnionFind returns a fresh structure over n items.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]uint32, n)}
	for i := range uf.parent {
		uf.parent[i] = uint32(i)
	}
	return uf
}

// Find returns the representative of x with path compression.
func (u *UnionFind) Find(x uint32) uint32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the classes of a and b, returning true if they were distinct.
func (u *UnionFind) Union(a, b uint32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}

// Components returns a component label per vertex via union-find.
func Components(g graph.Graph) []uint32 {
	n := g.N()
	uf := NewUnionFind(n)
	for v := 0; v < n; v++ {
		g.OutNgh(uint32(v), func(u uint32, _ int32) bool {
			uf.Union(uint32(v), u)
			return true
		})
	}
	out := make([]uint32, n)
	for v := 0; v < n; v++ {
		out[v] = uf.Find(uint32(v))
	}
	return out
}

// SamePartition reports whether two labellings induce the same partition of
// [0, n).
func SamePartition(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := bwd[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// Kruskal returns the total weight and edge count of a minimum spanning
// forest of the undirected edges (u < v once each).
func Kruskal(n int, eu, ev []uint32, ew []int32) (int64, int) {
	type edge struct {
		w  int32
		id int
	}
	edges := make([]edge, len(eu))
	for i := range eu {
		edges[i] = edge{ew[i], i}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w < edges[j].w
		}
		return edges[i].id < edges[j].id
	})
	uf := NewUnionFind(n)
	var total int64
	count := 0
	for _, e := range edges {
		if uf.Union(eu[e.id], ev[e.id]) {
			total += int64(e.w)
			count++
		}
	}
	return total, count
}

// SCC returns strongly connected component labels via iterative Tarjan.
func SCC(g graph.Graph) []uint32 {
	n := g.N()
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]uint32, n)
	onstack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = inf
	}
	var tstack []uint32
	type frame struct {
		v  uint32
		pi int
	}
	next := int32(0)
	compID := uint32(0)
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = frames[:0]
		frames = append(frames, frame{uint32(root), 0})
		index[root] = next
		low[root] = next
		next++
		tstack = append(tstack, uint32(root))
		onstack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			nghs := g.DecodeOut(f.v, nil)
			if f.pi < len(nghs) {
				w := nghs[f.pi]
				f.pi++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					tstack = append(tstack, w)
					onstack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onstack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := tstack[len(tstack)-1]
					tstack = tstack[:len(tstack)-1]
					onstack[w] = false
					comp[w] = compID
					if w == v {
						break
					}
				}
				compID++
			}
		}
	}
	return comp
}

// EdgeKey normalizes an undirected edge to a map key.
func EdgeKey(u, v uint32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// BCC returns the biconnected components of a symmetric graph as a map from
// normalized edge keys to component IDs, via iterative Hopcroft-Tarjan.
func BCC(g graph.Graph) map[uint64]uint32 {
	n := g.N()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	out := map[uint64]uint32{}
	var estack []uint64
	compID := uint32(0)
	type frame struct {
		v  uint32
		pi int
	}
	timer := int32(0)
	var frames []frame
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{uint32(root), 0})
		disc[root] = timer
		low[root] = timer
		timer++
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			nghs := g.DecodeOut(v, nil)
			if f.pi < len(nghs) {
				w := nghs[f.pi]
				f.pi++
				if int32(w) == parent[v] {
					continue
				}
				if disc[w] == -1 {
					parent[w] = int32(v)
					estack = append(estack, EdgeKey(v, w))
					disc[w] = timer
					low[w] = timer
					timer++
					frames = append(frames, frame{w, 0})
				} else if disc[w] < disc[v] {
					estack = append(estack, EdgeKey(v, w))
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				continue
			}
			p := frames[len(frames)-1].v
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= disc[p] {
				// Pop the biconnected component of edge (p, v).
				key := EdgeKey(p, v)
				for {
					e := estack[len(estack)-1]
					estack = estack[:len(estack)-1]
					out[e] = compID
					if e == key {
						break
					}
				}
				compID++
			}
		}
	}
	return out
}

// Coreness returns the Matula-Beck peeling corenesses.
func Coreness(g graph.Graph) []uint32 {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.OutDeg(uint32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}
	core := make([]uint32, n)
	removed := make([]bool, n)
	k := 0
	for d := 0; d <= maxDeg; d++ {
		for len(buckets[d]) > 0 {
			v := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			if removed[v] || deg[v] != d {
				continue
			}
			if d > k {
				k = d
			}
			core[v] = uint32(k)
			removed[v] = true
			g.OutNgh(v, func(u uint32, _ int32) bool {
				if !removed[u] && deg[u] > d {
					deg[u]--
					buckets[deg[u]] = append(buckets[deg[u]], u)
				}
				return true
			})
		}
	}
	return core
}

// GreedyMIS returns the independent set produced by processing vertices in
// increasing rank order.
func GreedyMIS(g graph.Graph, rank []uint32) []bool {
	n := g.N()
	order := make([]uint32, n)
	for v := 0; v < n; v++ {
		order[rank[v]] = uint32(v)
	}
	in := make([]bool, n)
	blocked := make([]bool, n)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		in[v] = true
		g.OutNgh(v, func(u uint32, _ int32) bool {
			blocked[u] = true
			return true
		})
	}
	return in
}

// GreedyMatching matches edges in increasing key order.
func GreedyMatching(n int, eu, ev []uint32, key []uint64) map[uint64]bool {
	idx := make([]int, len(eu))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return key[idx[a]] < key[idx[b]] })
	used := make([]bool, n)
	out := map[uint64]bool{}
	for _, i := range idx {
		if !used[eu[i]] && !used[ev[i]] {
			used[eu[i]] = true
			used[ev[i]] = true
			out[EdgeKey(eu[i], ev[i])] = true
		}
	}
	return out
}

// Triangles counts triangles by ordered intersection, independently of the
// parallel implementation's directed-graph construction.
func Triangles(g graph.Graph) int64 {
	n := g.N()
	var count int64
	for v := 0; v < n; v++ {
		nv := g.DecodeOut(uint32(v), nil)
		for _, u := range nv {
			if u <= uint32(v) {
				continue
			}
			nu := g.DecodeOut(u, nil)
			// Count common neighbors w with w > u > v: each triangle once.
			i, j := 0, 0
			for i < len(nv) && j < len(nu) {
				a, b := nv[i], nu[j]
				switch {
				case a == b:
					if a > u {
						count++
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return count
}

package seqref

// The oracles themselves are checked against hand-computable known values,
// so an oracle bug cannot silently validate a broken parallel
// implementation.

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func path4() graph.Graph {
	return graph.FromEdgeList(parallel.Default, 4, gen.Path(4), graph.BuildOptions{Symmetrize: true})
}

func TestBFSKnown(t *testing.T) {
	d := BFS(path4(), 0)
	for v, want := range []uint32{0, 1, 2, 3} {
		if d[v] != want {
			t.Fatalf("d[%d] = %d", v, d[v])
		}
	}
}

func TestDijkstraKnown(t *testing.T) {
	el := &graph.EdgeList{N: 3, U: []uint32{0, 0, 1}, V: []uint32{1, 2, 2}, W: []int32{1, 10, 2}}
	g := graph.FromEdgeList(parallel.Default, 3, el, graph.BuildOptions{})
	d := Dijkstra(g, 0)
	if d[2] != 3 {
		t.Fatalf("d[2] = %d want 3 (through vertex 1)", d[2])
	}
}

func TestBellmanFordKnownNegCycle(t *testing.T) {
	el := &graph.EdgeList{N: 3, U: []uint32{0, 1, 2}, V: []uint32{1, 2, 1}, W: []int32{1, -3, 1}}
	g := graph.FromEdgeList(parallel.Default, 3, el, graph.BuildOptions{})
	d, neg := BellmanFord(g, 0)
	if !neg || d[1] != math.MinInt64 || d[2] != math.MinInt64 {
		t.Fatalf("neg=%v d=%v", neg, d)
	}
}

func TestBCKnown(t *testing.T) {
	d := BC(path4(), 0)
	want := []float64{0, 2, 1, 0}
	for v := range want {
		if math.Abs(d[v]-want[v]) > 1e-12 {
			t.Fatalf("BC[%d] = %v", v, d[v])
		}
	}
}

func TestComponentsAndPartition(t *testing.T) {
	el := &graph.EdgeList{N: 5, U: []uint32{0, 2}, V: []uint32{1, 3}}
	g := graph.FromEdgeList(parallel.Default, 5, el, graph.BuildOptions{Symmetrize: true})
	c := Components(g)
	if c[0] != c[1] || c[2] != c[3] || c[0] == c[2] || c[4] == c[0] {
		t.Fatalf("components = %v", c)
	}
	if !SamePartition([]uint32{1, 1, 2}, []uint32{7, 7, 9}) {
		t.Fatal("SamePartition false negative")
	}
	if SamePartition([]uint32{1, 1, 2}, []uint32{7, 8, 9}) {
		t.Fatal("SamePartition false positive (split)")
	}
	if SamePartition([]uint32{1, 2}, []uint32{7, 7}) {
		t.Fatal("SamePartition false positive (merge)")
	}
}

func TestKruskalKnown(t *testing.T) {
	// Triangle with weights 1,2,3: MSF = {1,2}, weight 3.
	w, count := Kruskal(3, []uint32{0, 1, 0}, []uint32{1, 2, 2}, []int32{1, 2, 3})
	if w != 3 || count != 2 {
		t.Fatalf("Kruskal w=%d count=%d", w, count)
	}
}

func TestSCCKnown(t *testing.T) {
	// 0->1->2->0 cycle plus 2->3 (3 is its own SCC).
	el := &graph.EdgeList{N: 4, U: []uint32{0, 1, 2, 2}, V: []uint32{1, 2, 0, 3}}
	g := graph.FromEdgeList(parallel.Default, 4, el, graph.BuildOptions{})
	c := SCC(g)
	if c[0] != c[1] || c[1] != c[2] || c[3] == c[0] {
		t.Fatalf("SCC = %v", c)
	}
}

func TestBCCKnown(t *testing.T) {
	// Path 0-1-2: two bridges = two BCCs.
	bcc := BCC(path4())
	if len(bcc) != 3 {
		t.Fatalf("%d edges labeled", len(bcc))
	}
	ids := map[uint32]bool{}
	for _, id := range bcc {
		ids[id] = true
	}
	if len(ids) != 3 {
		t.Fatalf("path4 has %d BCCs want 3", len(ids))
	}
	// Triangle: one BCC.
	tri := graph.FromEdgeList(parallel.Default, 3, &graph.EdgeList{N: 3, U: []uint32{0, 1, 2}, V: []uint32{1, 2, 0}}, graph.BuildOptions{Symmetrize: true})
	bccT := BCC(tri)
	first := uint32(0)
	for _, id := range bccT {
		first = id
	}
	for e, id := range bccT {
		if id != first {
			t.Fatalf("triangle edge %x in different BCC", e)
		}
	}
}

func TestCorenessKnown(t *testing.T) {
	// Triangle with a pendant: triangle vertices have coreness 2, pendant 1.
	el := &graph.EdgeList{N: 4, U: []uint32{0, 1, 2, 0}, V: []uint32{1, 2, 0, 3}}
	g := graph.FromEdgeList(parallel.Default, 4, el, graph.BuildOptions{Symmetrize: true})
	c := Coreness(g)
	want := []uint32{2, 2, 2, 1}
	for v := range want {
		if c[v] != want[v] {
			t.Fatalf("coreness = %v want %v", c, want)
		}
	}
}

func TestGreedyMISKnown(t *testing.T) {
	// Path 0-1-2 with rank order 0,1,2: greedy takes 0, blocks 1, takes 2.
	g := graph.FromEdgeList(parallel.Default, 3, gen.Path(3), graph.BuildOptions{Symmetrize: true})
	in := GreedyMIS(g, []uint32{0, 1, 2})
	if !in[0] || in[1] || !in[2] {
		t.Fatalf("MIS = %v", in)
	}
}

func TestGreedyMatchingKnown(t *testing.T) {
	// Path 0-1-2 with edge (0,1) first: matches (0,1) only.
	m := GreedyMatching(3, []uint32{0, 1}, []uint32{1, 2}, []uint64{0, 1})
	if len(m) != 1 || !m[EdgeKey(0, 1)] {
		t.Fatalf("matching = %v", m)
	}
}

func TestTrianglesKnown(t *testing.T) {
	k4 := graph.FromEdgeList(parallel.Default, 4, gen.Complete(4), graph.BuildOptions{Symmetrize: true})
	if got := Triangles(k4); got != 4 {
		t.Fatalf("K4 triangles = %d", got)
	}
	if got := Triangles(path4()); got != 0 {
		t.Fatalf("path triangles = %d", got)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(4)
	if !uf.Union(0, 1) || uf.Union(0, 1) {
		t.Fatal("Union repeat behaviour wrong")
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(2) == uf.Find(0) {
		t.Fatal("Find wrong")
	}
}

// Package stats computes the per-graph statistics the paper reports in
// Table 3 (sizes, effective diameters, peeling complexity ρ, degeneracy
// k_max) and Tables 8-13 (component counts and sizes, triangles, colors
// used, MIS / maximal matching / set cover sizes). The statistics double as
// end-to-end checks: they are produced by running the benchmark's own
// algorithms.
package stats

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Graph bundles the statistics of one input graph.
type Graph struct {
	Name              string
	N                 int
	M                 int // directed edge count, as the paper reports
	EffectiveDiameter int // max BFS level observed from sampled sources (lower bound)
	NumCC             int
	LargestCC         int
	NumBCC            int
	NumSCC            int // directed graphs only (0 otherwise)
	LargestSCC        int
	Triangles         int64
	ColorsLLF         int
	ColorsLF          int
	MISSize           int
	MatchingSize      int
	SetCoverSize      int
	KMax              int
	Rho               int
}

// Options tunes which statistics are computed.
type Options struct {
	// DiameterSamples is the number of BFS sources used to estimate the
	// effective diameter; 0 selects 4.
	DiameterSamples int
	// SkipTriangles skips the O(m^{3/2}) triangle count.
	SkipTriangles bool
	// Seed feeds the randomized algorithms.
	Seed uint64
}

// ComputeSym computes the undirected-graph statistics of a symmetric graph.
func ComputeSym(s *parallel.Scheduler, name string, g graph.Graph, opt Options) Graph {
	if opt.DiameterSamples == 0 {
		opt.DiameterSamples = 4
	}
	st := Graph{Name: name, N: g.N(), M: g.M()}
	st.EffectiveDiameter = EffectiveDiameter(s, g, opt.DiameterSamples, opt.Seed)
	cc := core.Connectivity(s, g, 0.2, opt.Seed)
	st.NumCC, st.LargestCC = core.ComponentCount(s, cc)
	bicc := core.Biconnectivity(s, g, 0.2, opt.Seed)
	st.NumBCC = core.NumBiccLabels(s, g, bicc)
	if !opt.SkipTriangles {
		st.Triangles = core.TriangleCount(s, g)
	}
	st.ColorsLLF = core.NumColors(s, core.Coloring(s, g, opt.Seed))
	st.ColorsLF = core.NumColors(s, core.ColoringLF(s, g, opt.Seed))
	mis := core.MIS(s, g, opt.Seed)
	for _, in := range mis {
		if in {
			st.MISSize++
		}
	}
	st.MatchingSize = len(core.MaximalMatching(s, g, opt.Seed))
	st.SetCoverSize = len(core.ApproxSetCover(s, g, 0.01, opt.Seed))
	coreness, rho := core.KCore(s, g, opt.Seed)
	st.KMax = core.Degeneracy(s, coreness)
	st.Rho = rho
	return st
}

// ComputeDir computes the directed-graph statistics (SCCs, directed
// effective diameter).
func ComputeDir(s *parallel.Scheduler, name string, g graph.Graph, opt Options) Graph {
	if opt.DiameterSamples == 0 {
		opt.DiameterSamples = 4
	}
	st := Graph{Name: name, N: g.N(), M: g.M()}
	st.EffectiveDiameter = EffectiveDiameter(s, g, opt.DiameterSamples, opt.Seed)
	labels := core.SCC(s, g, opt.Seed, core.SCCOpts{})
	st.NumSCC, st.LargestSCC = core.NumSCCs(s, labels)
	return st
}

// EffectiveDiameter returns the maximum BFS level observed from `samples`
// pseudo-random sources (plus vertex 0), the paper's lower-bound estimate
// for graphs whose exact diameter is impractical to compute.
func EffectiveDiameter(s *parallel.Scheduler, g graph.Graph, samples int, seed uint64) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	max := 0
	for i := 0; i <= samples; i++ {
		src := uint32(0)
		if i > 0 {
			src = uint32(xrand.Uniform(seed, uint64(i), uint64(n)))
		}
		dist := core.BFS(s, g, src)
		for _, d := range dist {
			if d != core.Inf && int(d) > max {
				max = int(d)
			}
		}
	}
	return max
}

// WriteTable writes statistics rows in the layout of the paper's Tables
// 8-13.
func WriteTable(w io.Writer, st Graph, directed bool) {
	fmt.Fprintf(w, "Statistics for the %s graph\n", st.Name)
	fmt.Fprintf(w, "  Num. Vertices                     %d\n", st.N)
	fmt.Fprintf(w, "  Num. Edges (directed count)       %d\n", st.M)
	fmt.Fprintf(w, "  Effective Diameter (sampled)      %d\n", st.EffectiveDiameter)
	if directed {
		fmt.Fprintf(w, "  Num. Strongly Connected Comp.     %d\n", st.NumSCC)
		fmt.Fprintf(w, "  Size of Largest SCC               %d\n", st.LargestSCC)
		return
	}
	fmt.Fprintf(w, "  Num. Connected Components         %d\n", st.NumCC)
	fmt.Fprintf(w, "  Size of Largest Component         %d\n", st.LargestCC)
	fmt.Fprintf(w, "  Num. Biconnected Components       %d\n", st.NumBCC)
	fmt.Fprintf(w, "  Num. Triangles                    %d\n", st.Triangles)
	fmt.Fprintf(w, "  Num. Colors Used by LF            %d\n", st.ColorsLF)
	fmt.Fprintf(w, "  Num. Colors Used by LLF           %d\n", st.ColorsLLF)
	fmt.Fprintf(w, "  Maximal Independent Set Size      %d\n", st.MISSize)
	fmt.Fprintf(w, "  Maximal Matching Size             %d\n", st.MatchingSize)
	fmt.Fprintf(w, "  Set Cover Size                    %d\n", st.SetCoverSize)
	fmt.Fprintf(w, "  kmax (Degeneracy)                 %d\n", st.KMax)
	fmt.Fprintf(w, "  rho (Num. Peeling Rounds)         %d\n", st.Rho)
}

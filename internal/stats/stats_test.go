package stats

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
)

func TestComputeSymTorus(t *testing.T) {
	g := gen.BuildTorus3D(parallel.Default, 5, false, 1)
	s := ComputeSym(parallel.Default, "torus", g, Options{Seed: 1})
	if s.N != 125 || s.M != 750 {
		t.Fatalf("sizes N=%d M=%d", s.N, s.M)
	}
	if s.NumCC != 1 || s.LargestCC != 125 {
		t.Fatalf("CC: %d largest %d", s.NumCC, s.LargestCC)
	}
	if s.Triangles != 0 {
		t.Fatalf("torus triangles = %d", s.Triangles)
	}
	if s.KMax != 6 || s.Rho != 1 {
		t.Fatalf("kmax=%d rho=%d want 6,1", s.KMax, s.Rho)
	}
	// 5x5x5 torus: max BFS eccentricity is 2+2+2 = 6 (wraparound).
	if s.EffectiveDiameter != 6 {
		t.Fatalf("effective diameter = %d want 6", s.EffectiveDiameter)
	}
	if s.MISSize == 0 || s.MatchingSize == 0 || s.ColorsLLF < 2 {
		t.Fatalf("degenerate stats: %+v", s)
	}
}

func TestComputeDirCycle(t *testing.T) {
	g := graph.FromEdgeList(parallel.Default, 50, gen.Cycle(50), graph.BuildOptions{})
	s := ComputeDir(parallel.Default, "cycle", g, Options{Seed: 2})
	if s.NumSCC != 1 || s.LargestSCC != 50 {
		t.Fatalf("SCC: %d largest %d", s.NumSCC, s.LargestSCC)
	}
	if s.EffectiveDiameter != 49 {
		t.Fatalf("directed diameter = %d want 49", s.EffectiveDiameter)
	}
}

func TestWriteTableContainsRows(t *testing.T) {
	g := gen.BuildTorus3D(parallel.Default, 4, false, 1)
	s := ComputeSym(parallel.Default, "t", g, Options{Seed: 3})
	var buf bytes.Buffer
	WriteTable(&buf, s, false)
	out := buf.String()
	for _, want := range []string{"Num. Vertices", "Triangles", "kmax", "rho", "Set Cover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var dbuf bytes.Buffer
	sd := ComputeDir(parallel.Default, "d", graph.FromEdgeList(parallel.Default, 10, gen.Cycle(10), graph.BuildOptions{}), Options{Seed: 3})
	WriteTable(&dbuf, sd, true)
	if !strings.Contains(dbuf.String(), "Strongly Connected") {
		t.Fatal("directed table missing SCC row")
	}
}

func TestSkipTriangles(t *testing.T) {
	g := gen.BuildRMAT(parallel.Default, 8, 6, true, false, 4)
	s := ComputeSym(parallel.Default, "r", g, Options{Seed: 1, SkipTriangles: true})
	if s.Triangles != 0 {
		t.Fatal("triangles computed despite skip")
	}
}

package vfs

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the transient fault returned by operations failed via
// FailNext — it models an fsync error, an ENOSPC short write, or any other
// single-operation I/O failure the caller should handle without the
// process dying.
var ErrInjected = errors.New("vfs: injected fault")

// ErrCrashed is returned by every operation at and after the crash point
// set via CrashAt: the simulated process is dead and no further I/O can
// succeed.
var ErrCrashed = errors.New("vfs: crashed")

// FaultFS wraps another FS and injects faults deterministically. Every FS
// and File operation increments a shared operation counter; CrashAt(n)
// makes operation n and all later operations fail with ErrCrashed (a
// crashing Write is torn: half its bytes reach the underlying file first),
// and FailNext(k) makes the next k operations fail transiently with
// ErrInjected. Because the counter is deterministic for a deterministic
// workload, a clean run's Ops() total enumerates every possible injection
// point for an exhaustive crash-recovery sweep.
//
// FaultFS is safe for concurrent use.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	ops      int64
	crashAt  int64 // 0 = disabled; ops >= crashAt fail permanently
	failNext int   // countdown of transient failures
	crashed  bool
}

// NewFaultFS wraps inner with deterministic fault injection. With no
// faults armed it is a transparent (but counting) pass-through.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// Ops returns the number of operations observed so far.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// CrashAt arms a permanent crash: the n-th operation from now (1-based
// relative to the current count) and every operation after it fail with
// ErrCrashed. A crashing Write tears: half the bytes reach the underlying
// file before the error.
func (f *FaultFS) CrashAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = f.ops + n
}

// FailNext makes the next k operations fail with ErrInjected, then clears
// itself. A failing Write is short: half the bytes reach the underlying
// file before the error.
func (f *FaultFS) FailNext(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNext = k
}

// Crashed reports whether the armed crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step counts one operation and decides its fate: nil (proceed), ErrCrashed
// (permanent), or ErrInjected (transient).
func (f *FaultFS) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		return ErrCrashed
	}
	if f.failNext > 0 {
		f.failNext--
		return ErrInjected
	}
	return nil
}

// MkdirAll creates dir and any missing parents.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("mkdirall %s: %w", dir, err)
	}
	return f.inner.MkdirAll(dir)
}

// Create opens name for writing, truncating it if it exists.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, fmt.Errorf("create %s: %w", name, err)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Open opens name for reading.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, fmt.Errorf("open %s: %w", name, err)
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// OpenAppend opens name for appending, creating it if missing.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, fmt.Errorf("openappend %s: %w", name, err)
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Rename atomically replaces newname with oldname.
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("rename %s %s: %w", oldname, newname, err)
	}
	return f.inner.Rename(oldname, newname)
}

// Remove deletes a file.
func (f *FaultFS) Remove(name string) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("remove %s: %w", name, err)
	}
	return f.inner.Remove(name)
}

// RemoveAll deletes path and everything under it.
func (f *FaultFS) RemoveAll(path string) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("removeall %s: %w", path, err)
	}
	return f.inner.RemoveAll(path)
}

// ReadDir lists the entries of dir in name order.
func (f *FaultFS) ReadDir(dir string) ([]DirEntry, error) {
	if err := f.step(); err != nil {
		return nil, fmt.Errorf("readdir %s: %w", dir, err)
	}
	return f.inner.ReadDir(dir)
}

// Size returns the byte size of a file.
func (f *FaultFS) Size(name string) (int64, error) {
	if err := f.step(); err != nil {
		return 0, fmt.Errorf("size %s: %w", name, err)
	}
	return f.inner.Size(name)
}

// Truncate cuts the named file down to size bytes.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.step(); err != nil {
		return fmt.Errorf("truncate %s: %w", name, err)
	}
	return f.inner.Truncate(name, size)
}

// faultFile counts and fault-injects operations on an open file.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.step(); err != nil {
		return 0, fmt.Errorf("read %s: %w", ff.name, err)
	}
	return ff.inner.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.step(); err != nil {
		// A failing write tears: half the payload reaches the file before
		// the error surfaces, like a real partial write at a full disk or a
		// crash mid-write.
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("write %s: %w", ff.name, err)
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.step(); err != nil {
		return fmt.Errorf("sync %s: %w", ff.name, err)
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Close is not an injection point: recovery paths close files
	// unconditionally in defers, and a failing close adds no interesting
	// states the write/sync faults don't already cover.
	return ff.inner.Close()
}

package vfs

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models durability for crash testing. Every
// file has two views: the applied content (what reads observe while the
// process lives) and the durable content (the last state covered by Sync).
// Crash discards the applied view and reinstates the durable one, with a
// configurable amount of the unsynced append suffix surviving — which is
// how torn write-ahead-log tails are manufactured. Directories and renames
// are treated as immediately durable (the persistence layer's
// write-fsync-rename protocol never depends on more than that; crashes
// before the rename are exercised by FaultFS failing the rename operation
// itself).
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	dirs    map[string]bool
	files   map[string]*memFile
	durable map[string][]byte // last-synced content per name
}

// memFile is the applied view of one file.
type memFile struct {
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		dirs:    map[string]bool{".": true, "/": true},
		files:   make(map[string]*memFile),
		durable: make(map[string][]byte),
	}
}

// CrashMode selects how much of each file's unsynced append suffix a
// simulated crash preserves.
type CrashMode int

// The crash modes: what survives of data written after the last Sync.
const (
	// CrashDropUnsynced loses everything after the last Sync.
	CrashDropUnsynced CrashMode = iota
	// CrashTornUnsynced keeps half of the unsynced suffix — a torn tail.
	CrashTornUnsynced
	// CrashKeepUnsynced keeps the full unsynced suffix (the lucky case
	// where the page cache made it to disk anyway).
	CrashKeepUnsynced
)

// Crash simulates a process/machine crash: every file reverts to its
// durable content, except that when the applied content is a pure append
// extension of the durable content, mode selects how much of the unsynced
// suffix survives. Files never synced are removed entirely (modulo the
// surviving suffix rule applied to an empty durable view). Open handles
// from before the crash must not be used afterwards.
func (m *MemFS) Crash(mode CrashMode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make(map[string]bool, len(m.files)+len(m.durable))
	for name := range m.files {
		names[name] = true
	}
	for name := range m.durable {
		names[name] = true
	}
	for name := range names {
		d, durableExists := m.durable[name]
		f, applied := m.files[name]
		keep := append([]byte(nil), d...)
		if applied && len(f.data) >= len(d) && (len(d) == 0 || string(f.data[:len(d)]) == string(d)) {
			suffix := f.data[len(d):]
			switch mode {
			case CrashTornUnsynced:
				suffix = suffix[:len(suffix)/2]
			case CrashDropUnsynced:
				suffix = nil
			}
			keep = append(keep, suffix...)
		}
		if !durableExists && len(keep) == 0 {
			delete(m.files, name)
			continue
		}
		m.files[name] = &memFile{data: keep}
	}
}

// MkdirAll creates dir and any missing parents.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = path.Clean(dir)
	for d := dir; d != "." && d != "/" && d != ""; d = parentOf(d) {
		m.dirs[d] = true
	}
	return nil
}

// Create opens name for writing, truncating any existing content.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, name: name, f: f, write: true}, nil
}

// Open opens name for reading.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("vfs: open %s: file does not exist", name)
	}
	return &memHandle{fs: m, name: name, f: f}, nil
}

// OpenAppend opens name for appending, creating it if missing.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, name: name, f: f, write: true}, nil
}

// Rename atomically (and, in this model, durably) replaces newname.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("vfs: rename %s: file does not exist", oldname)
	}
	m.files[newname] = f
	delete(m.files, oldname)
	if d, ok := m.durable[oldname]; ok {
		m.durable[newname] = d
		delete(m.durable, oldname)
	} else {
		delete(m.durable, newname)
	}
	return nil
}

// Remove deletes a file from both views.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("vfs: remove %s: file does not exist", name)
	}
	delete(m.files, name)
	delete(m.durable, name)
	return nil
}

// RemoveAll deletes p and everything under it from both views.
func (m *MemFS) RemoveAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	prefix := p + "/"
	for name := range m.files {
		if name == p || strings.HasPrefix(name, prefix) {
			delete(m.files, name)
			delete(m.durable, name)
		}
	}
	for d := range m.dirs {
		if d == p || strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
		}
	}
	return nil
}

// ReadDir lists dir's immediate children in name order.
func (m *MemFS) ReadDir(dir string) ([]DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = path.Clean(dir)
	if !m.dirs[dir] {
		return nil, fmt.Errorf("vfs: readdir %s: directory does not exist", dir)
	}
	seen := make(map[string]bool)
	var out []DirEntry
	for d := range m.dirs {
		if parentOf(d) == dir && !seen[path.Base(d)] {
			seen[path.Base(d)] = true
			out = append(out, DirEntry{Name: path.Base(d), Dir: true})
		}
	}
	for name := range m.files {
		if parentOf(name) == dir && !seen[path.Base(name)] {
			seen[path.Base(name)] = true
			out = append(out, DirEntry{Name: path.Base(name)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Size returns the applied byte size of a file.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	f, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("vfs: size %s: file does not exist", name)
	}
	return int64(len(f.data)), nil
}

// Truncate cuts a file's applied content to size bytes. The durable view
// shrinks with it (a shorter file cannot resurrect dropped bytes).
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("vfs: truncate %s: file does not exist", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("vfs: truncate %s: size %d out of range [0, %d]", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if d, ok := m.durable[name]; ok && int64(len(d)) > size {
		m.durable[name] = d[:size]
	}
	return nil
}

// DurableLen reports the durable byte length of a file (testing hook).
func (m *MemFS) DurableLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.durable[path.Clean(name)])
}

// memHandle is an open MemFS file: sequential reads from a private offset,
// writes appended at the end of the applied content.
type memHandle struct {
	fs      *MemFS
	name    string
	f       *memFile
	readOff int
	write   bool
	closed  bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("vfs: read %s: file closed", h.name)
	}
	if h.readOff >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.readOff:])
	h.readOff += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("vfs: write %s: file closed", h.name)
	}
	if !h.write {
		return 0, fmt.Errorf("vfs: write %s: file opened read-only", h.name)
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("vfs: sync %s: file closed", h.name)
	}
	// Sync makes the current applied content durable — but only if the name
	// still resolves to this file (a concurrent Remove wins).
	if cur, ok := h.fs.files[h.name]; ok && cur == h.f {
		h.fs.durable[h.name] = append([]byte(nil), h.f.data...)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// Package vfs abstracts the filesystem operations the persistence layer
// performs — create/rename/fsync of snapshot files, append/fsync of
// write-ahead logs, directory listing at recovery — behind a small
// injectable interface. Production code runs on OS() (thin wrappers over
// package os); tests run on NewMemFS(), an in-memory filesystem that
// models durability (data not fsync'd may vanish at a simulated crash),
// usually wrapped in NewFaultFS(), which injects short writes, fsync
// errors and crash-at-operation-N faults so recovery code can be driven
// through every failure point deterministically.
//
// Paths are slash-separated relative or absolute names; implementations
// do not interpret them beyond parent/child structure (the OS
// implementation hands them to package os verbatim, which accepts slashes
// on every supported platform).
package vfs

import (
	"io"
	"os"
	"path"
	"sort"
)

// File is an open file: sequential reads or writes plus Sync, which must
// not return until previously written data is durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written data to durable storage (fsync).
	Sync() error
}

// FS is the filesystem surface the persistence layer needs. Methods mirror
// package os; all take slash-separated paths.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating it if it exists.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// RemoveAll deletes path and everything under it.
	RemoveAll(path string) error
	// ReadDir lists the entries of dir in name order.
	ReadDir(dir string) ([]DirEntry, error)
	// Size returns the byte size of a file.
	Size(name string) (int64, error)
	// Truncate cuts the named file down to size bytes (recovery uses it to
	// drop a torn write-ahead-log tail).
	Truncate(name string, size int64) error
}

// DirEntry is one ReadDir result.
type DirEntry struct {
	// Name is the entry's base name.
	Name string
	// Dir reports whether the entry is a directory.
	Dir bool
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

// osFS delegates to package os.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) ReadDir(dir string) ([]DirEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, len(ents))
	for i, e := range ents {
		out[i] = DirEntry{Name: e.Name(), Dir: e.IsDir()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (osFS) Size(name string) (int64, error) {
	info, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// parentOf returns the cleaned parent directory of a cleaned path.
func parentOf(p string) string { return path.Dir(path.Clean(p)) }

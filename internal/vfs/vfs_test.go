package vfs_test

import (
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vfs"
)

func writeFile(t *testing.T, fs vfs.FS, name, content string) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatalf("Write(%s): %v", name, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync(%s): %v", name, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close(%s): %v", name, err)
	}
}

func readFile(t *testing.T, fs vfs.FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open(%s): %v", name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("ReadAll(%s): %v", name, err)
	}
	return string(b)
}

// roundTrip exercises the shared FS contract on any implementation.
func roundTrip(t *testing.T, fs vfs.FS, root string) {
	t.Helper()
	dir := root + "/a/b"
	if err := fs.MkdirAll(dir); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	writeFile(t, fs, dir+"/one", "hello")
	if got := readFile(t, fs, dir+"/one"); got != "hello" {
		t.Fatalf("read back %q, want hello", got)
	}

	ap, err := fs.OpenAppend(dir + "/one")
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if _, err := ap.Write([]byte(" world")); err != nil {
		t.Fatalf("append write: %v", err)
	}
	if err := ap.Sync(); err != nil {
		t.Fatalf("append sync: %v", err)
	}
	ap.Close()
	if got := readFile(t, fs, dir+"/one"); got != "hello world" {
		t.Fatalf("after append got %q, want %q", got, "hello world")
	}

	sz, err := fs.Size(dir + "/one")
	if err != nil || sz != int64(len("hello world")) {
		t.Fatalf("Size = %d, %v; want %d", sz, err, len("hello world"))
	}
	if err := fs.Truncate(dir+"/one", 5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if got := readFile(t, fs, dir+"/one"); got != "hello" {
		t.Fatalf("after truncate got %q, want hello", got)
	}

	writeFile(t, fs, dir+"/two.tmp", "temp")
	if err := fs.Rename(dir+"/two.tmp", dir+"/two"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if got := readFile(t, fs, dir+"/two"); got != "temp" {
		t.Fatalf("after rename got %q, want temp", got)
	}

	ents, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	if got := strings.Join(names, ","); got != "one,two" {
		t.Fatalf("ReadDir = %q, want one,two", got)
	}

	ents, err = fs.ReadDir(root + "/a")
	if err != nil {
		t.Fatalf("ReadDir parent: %v", err)
	}
	if len(ents) != 1 || ents[0].Name != "b" || !ents[0].Dir {
		t.Fatalf("ReadDir parent = %+v, want single dir entry b", ents)
	}

	if err := fs.Remove(dir + "/two"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := fs.Open(dir + "/two"); err == nil {
		t.Fatal("Open removed file should fail")
	}
	if err := fs.RemoveAll(root + "/a"); err != nil {
		t.Fatalf("RemoveAll: %v", err)
	}
	if _, err := fs.Open(dir + "/one"); err == nil {
		t.Fatal("Open file under removed tree should fail")
	}
}

func TestOSRoundTrip(t *testing.T) {
	roundTrip(t, vfs.OS(), filepath.ToSlash(t.TempDir()))
}

func TestMemRoundTrip(t *testing.T) {
	roundTrip(t, vfs.NewMemFS(), "root")
}

func TestFaultPassThroughRoundTrip(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.NewMemFS())
	roundTrip(t, ffs, "root")
	if ffs.Ops() == 0 {
		t.Fatal("FaultFS should have counted operations")
	}
}

func TestMemCrashDurability(t *testing.T) {
	m := vfs.NewMemFS()
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, m, "d/synced", "durable")

	// Append more without syncing.
	ap, err := m.OpenAppend("d/synced")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Write([]byte("-unsynced")); err != nil {
		t.Fatal(err)
	}
	ap.Close()

	// And a file never synced at all.
	f, err := m.Create("d/never")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("gone"))
	f.Close()

	m.Crash(vfs.CrashDropUnsynced)
	if got := readFile(t, m, "d/synced"); got != "durable" {
		t.Fatalf("after crash got %q, want durable", got)
	}
	if _, err := m.Open("d/never"); err == nil {
		t.Fatal("never-synced file should not survive a crash")
	}
	// The directory survives (dirs are durable on creation).
	if _, err := m.ReadDir("d"); err != nil {
		t.Fatalf("dir should survive crash: %v", err)
	}
}

func TestMemCrashTornAndKeep(t *testing.T) {
	for _, tc := range []struct {
		mode vfs.CrashMode
		want string
	}{
		{vfs.CrashDropUnsynced, "base"},
		{vfs.CrashTornUnsynced, "base1234"},     // half of the 8-byte suffix
		{vfs.CrashKeepUnsynced, "base12345678"}, // all of it
	} {
		m := vfs.NewMemFS()
		writeFile(t, m, "f", "base")
		ap, err := m.OpenAppend("f")
		if err != nil {
			t.Fatal(err)
		}
		ap.Write([]byte("12345678"))
		ap.Close()
		m.Crash(tc.mode)
		if got := readFile(t, m, "f"); got != tc.want {
			t.Errorf("mode %v: got %q, want %q", tc.mode, got, tc.want)
		}
	}
}

func TestMemCrashRewrittenFileRevertsToDurable(t *testing.T) {
	m := vfs.NewMemFS()
	writeFile(t, m, "f", "original")
	// Recreate with different, unsynced content: not an append extension,
	// so the crash reverts fully to the durable bytes.
	f, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("xx"))
	f.Close()
	m.Crash(vfs.CrashKeepUnsynced)
	if got := readFile(t, m, "f"); got != "original" {
		t.Fatalf("got %q, want original", got)
	}
}

func TestMemRenameIsDurable(t *testing.T) {
	m := vfs.NewMemFS()
	writeFile(t, m, "f.tmp", "snap")
	if err := m.Rename("f.tmp", "f"); err != nil {
		t.Fatal(err)
	}
	m.Crash(vfs.CrashDropUnsynced)
	if got := readFile(t, m, "f"); got != "snap" {
		t.Fatalf("renamed file lost at crash: got %q", got)
	}
	if _, err := m.Open("f.tmp"); err == nil {
		t.Fatal("old name should be gone after rename + crash")
	}
}

func TestMemTruncateShrinksDurable(t *testing.T) {
	m := vfs.NewMemFS()
	writeFile(t, m, "f", "0123456789")
	if err := m.Truncate("f", 4); err != nil {
		t.Fatal(err)
	}
	m.Crash(vfs.CrashDropUnsynced)
	if got := readFile(t, m, "f"); got != "0123" {
		t.Fatalf("truncate should shrink the durable view too: got %q", got)
	}
	if err := m.Truncate("f", 100); err == nil {
		t.Fatal("growing truncate should be rejected")
	}
}

func TestFaultFailNext(t *testing.T) {
	m := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(m)
	writeFile(t, ffs, "f", "ok")

	ffs.FailNext(1)
	if err := ffs.MkdirAll("d"); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// Transient: the very next operation succeeds.
	if err := ffs.MkdirAll("d"); err != nil {
		t.Fatalf("fault should have cleared: %v", err)
	}
	if ffs.Crashed() {
		t.Fatal("FailNext must not count as a crash")
	}
}

func TestFaultShortWrite(t *testing.T) {
	m := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(m)
	f, err := ffs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailNext(1)
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 4 {
		t.Fatalf("short write should land half the bytes, wrote %d", n)
	}
	if got := readFile(t, m, "f"); got != "1234" {
		t.Fatalf("underlying file has %q, want the torn half", got)
	}
}

func TestFaultCrashAtIsSticky(t *testing.T) {
	m := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(m)
	writeFile(t, ffs, "f", "ok")
	before := ffs.Ops()

	ffs.CrashAt(2)
	if err := ffs.MkdirAll("d"); err != nil {
		t.Fatalf("op before crash point should succeed: %v", err)
	}
	if err := ffs.MkdirAll("d"); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() should report true")
	}
	// Permanently dead: everything keeps failing.
	if _, err := ffs.Open("f"); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("post-crash op must fail, got %v", err)
	}
	if ffs.Ops() <= before {
		t.Fatal("ops should keep counting")
	}
}

func TestFaultOpsDeterministic(t *testing.T) {
	run := func() int64 {
		ffs := vfs.NewFaultFS(vfs.NewMemFS())
		ffs.MkdirAll("a/b")
		writeFile(t, ffs, "a/b/f", "data")
		readFile(t, ffs, "a/b/f")
		return ffs.Ops()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical workloads counted %d vs %d ops", a, b)
	}
}

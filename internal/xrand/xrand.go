// Package xrand provides deterministic, splittable pseudo-randomness for the
// randomized algorithms in the benchmark (LDD shifts, SCC center permutation,
// MIS/matching/coloring priorities, set-cover round priorities, RMAT).
//
// All randomness is hash-based: Hash64(seed, i) yields the i'th draw of a
// stream without any shared state, so parallel loops can draw independent
// values with no synchronization and results are reproducible for a fixed
// seed — the property the paper relies on for "internally deterministic"
// behaviour of its randomized algorithms.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the splitmix64 generator state and returns the next
// output. It is the finalizer used by all hashing here.
func SplitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 hashes (seed, i) to a uniform 64-bit value. Distinct (seed, i) pairs
// give independent-looking outputs.
func Hash64(seed, i uint64) uint64 {
	return SplitMix64(seed*0x9e3779b97f4a7c15 + i + 0x632be59bd9b4e019)
}

// Hash32 hashes (seed, i) to a uniform 32-bit value.
func Hash32(seed, i uint64) uint32 {
	return uint32(Hash64(seed, i) >> 32)
}

// Uniform returns a uniform value in [0, n) for the i'th draw of the stream.
// n must be positive. Lemire's multiply-shift mapping is used; the tiny bias
// of mapping a 64-bit hash onto graph-scale n is irrelevant for the
// algorithms' expected-work arguments.
func Uniform(seed, i uint64, n uint64) uint64 {
	hi, _ := bits.Mul64(Hash64(seed, i), n)
	return hi
}

// Float64 returns a uniform float64 in [0, 1) for the i'th draw.
func Float64(seed, i uint64) float64 {
	return float64(Hash64(seed, i)>>11) / (1 << 53)
}

// Exp returns a draw from the exponential distribution with rate beta for the
// i'th index of the stream. LDD uses these as start-time shifts.
func Exp(seed, i uint64, beta float64) float64 {
	u := Float64(seed, i)
	// Guard against log(0); u in [0,1) so 1-u in (0,1].
	return -math.Log(1-u) / beta
}

// State is a tiny sequential splitmix64 stream for places where a stateful
// generator is more convenient (e.g. sequential reference implementations).
type State struct{ s uint64 }

// New returns a stateful stream seeded with seed.
func New(seed uint64) *State { return &State{s: seed} }

// Next returns the next 64-bit value of the stream.
func (r *State) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *State) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2) == Hash64(1, 3) || Hash64(1, 2) == Hash64(2, 2) {
		t.Fatal("Hash64 collides on trivially different inputs")
	}
}

func TestUniformInRange(t *testing.T) {
	err := quick.Check(func(seed, i uint64, n uint32) bool {
		m := uint64(n%1000) + 1
		v := Uniform(seed, i, m)
		return v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformCoversRange(t *testing.T) {
	const n = 16
	seen := make([]bool, n)
	for i := uint64(0); i < 1000; i++ {
		seen[Uniform(42, i, n)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never drawn in 1000 draws over [0,%d)", v, n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		f := Float64(7, i)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestExpMeanApproximately1OverBeta(t *testing.T) {
	const beta = 0.2
	const n = 200000
	var sum float64
	for i := uint64(0); i < n; i++ {
		v := Exp(99, i, beta)
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/beta) > 0.1/beta {
		t.Fatalf("Exp mean = %v, want about %v", mean, 1/beta)
	}
}

func TestStateStreamMatchesSplitMix(t *testing.T) {
	r := New(123)
	s := uint64(123)
	for i := 0; i < 100; i++ {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if got := r.Next(); got != z {
			t.Fatalf("stream diverged at step %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestHash32Distribution(t *testing.T) {
	// Chi-squared-ish sanity check over 256 buckets.
	var buckets [256]int
	const n = 1 << 16
	for i := uint64(0); i < n; i++ {
		buckets[Hash32(3, i)>>24]++
	}
	want := n / 256
	for b, c := range buckets {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d has %d draws, want about %d", b, c, want)
		}
	}
}

#!/usr/bin/env bash
# Smoke test for cmd/gbbs-serve: boot the daemon, probe /healthz, run one
# declarative request twice, and assert the second is served from the
# deterministic result cache (observable through the response's
# result_cache field and the /v1/cache counters), with bad parameters
# rejected as 400; then exercise the async job API (submit, duplicate-join,
# poll, result), a cross-tenant fairness spot check, and sharded
# scatter-gather execution (same answer as unsharded, per-K fingerprints,
# cache hit on repeat, coordinator stats on /healthz); finally SIGKILL the
# daemon and restart it over the same -data-dir, asserting the stored graph
# recovers to its pre-crash version and answer. All waits are
# retry-with-deadline, never fixed sleeps. Used by `make smoke-serve` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18099}"
TMPDIR_SMOKE="$(mktemp -d)"
BIN="$TMPDIR_SMOKE/gbbs-serve"
LOG="$TMPDIR_SMOKE/serve.log"

cleanup() {
    if [[ -n "${SERVER_PID:-}" ]]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMPDIR_SMOKE"
}
trap cleanup EXIT

fail() {
    echo "smoke-serve: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# retry_until DEADLINE_SECONDS DESCRIPTION CMD...: poll CMD every 100ms
# until it succeeds or the deadline passes. Deadline-based (not a fixed
# iteration count at a fixed sleep) so slow CI machines don't flake.
retry_until() {
    local deadline_s="$1" what="$2"
    shift 2
    local end=$((SECONDS + deadline_s))
    while ! "$@" >/dev/null 2>&1; do
        if ((SECONDS >= end)); then
            fail "timed out after ${deadline_s}s waiting for: $what"
        fi
        if [[ -n "${SERVER_PID:-}" ]]; then
            kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited while waiting for: $what"
        fi
        sleep 0.1
    done
}

# job_in_state ID STATE: does GET /v1/jobs/ID currently report STATE?
job_in_state() {
    curl -sf "http://$ADDR/v1/jobs/$1" | grep -q "\"state\": *\"$2\""
}

go build -o "$BIN" ./cmd/gbbs-serve

DATA_DIR="$TMPDIR_SMOKE/data"
SERVE_FLAGS=(-addr "$ADDR" -threads 4 -cache-mb 256 -timeout 60s
    -tenant-weights 'gold=3,bronze=1' -job-ttl 10m -data-dir "$DATA_DIR"
    -shards 8)

"$BIN" "${SERVE_FLAGS[@]}" >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the listener.
retry_until 10 "the listener" curl -sf "http://$ADDR/healthz"

HEALTH=$(curl -sf "http://$ADDR/healthz") || fail "healthz unreachable"
echo "$HEALTH" | grep -q '"status": *"ok"' || fail "healthz not ok: $HEALTH"

BODY='{"source":"rmat:14","transforms":["symmetrize"],"algorithm":"bfs","threads":2,"timeout_ms":30000}'

FIRST=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$BODY") || fail "first /v1/run failed"
echo "$FIRST" | grep -q '"summary"' || fail "first run has no summary: $FIRST"
echo "$FIRST" | grep -q '"cache": *"miss"' || fail "first run should be a graph-cache miss: $FIRST"
echo "$FIRST" | grep -q '"result_cache": *"miss"' || fail "first run should be a result-cache miss: $FIRST"

# The identical request is answered from the result cache: no build, no
# execution.
SECOND=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$BODY") || fail "second /v1/run failed"
echo "$SECOND" | grep -q '"result_cache": *"hit"' || fail "second identical run should hit the result cache: $SECOND"
echo "$SECOND" | grep -q '"cache": *"hit"' || fail "second identical run should not rebuild: $SECOND"

CACHE=$(curl -sf "http://$ADDR/v1/cache") || fail "/v1/cache failed"
GRAPH_SECTION=$(echo "$CACHE" | sed -n '/"graph":/,/"results":/p')
RESULT_SECTION=$(echo "$CACHE" | sed -n '/"results":/,$p')
echo "$GRAPH_SECTION" | grep -q '"misses": *1' || fail "graph cache should record 1 miss: $CACHE"
echo "$RESULT_SECTION" | grep -q '"misses": *1' || fail "result cache should record 1 miss: $CACHE"
echo "$RESULT_SECTION" | grep -q '"hits": *1' || fail "result cache should record 1 hit: $CACHE"

# Schema validation: an unknown parameter is rejected before any work.
BAD_STATUS=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/run" \
    -d '{"source":"rmat:14","transforms":["symmetrize"],"algorithm":"bfs","opts":{"bogus":1}}')
[[ "$BAD_STATUS" == "400" ]] || fail "unknown parameter returned $BAD_STATUS, want 400"

ALGOS=$(curl -sf "http://$ADDR/v1/algorithms") || fail "/v1/algorithms failed"
echo "$ALGOS" | grep -q '"name": *"bfs"' || fail "algorithm listing is missing bfs: $ALGOS"
echo "$ALGOS" | grep -q '"name": *"beta"' || fail "algorithm listing is missing parameter schemas: $ALGOS"

# Versioned graph store: create a deterministic graph, run against it by
# name, POST an edge batch (version bump), and assert the rerun is a
# result-cache miss whose fingerprint embeds the new version — an update can
# never serve a stale cached result.
CREATE_STATUS=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "http://$ADDR/v1/graphs/smoke" \
    -d '{"source":"grid:64","transforms":["symmetrize"]}')
[[ "$CREATE_STATUS" == "201" ]] || fail "graph create returned $CREATE_STATUS, want 201"

GRAPHS=$(curl -sf "http://$ADDR/v1/graphs") || fail "/v1/graphs failed"
echo "$GRAPHS" | grep -q '"name": *"smoke"' || fail "graph listing is missing smoke: $GRAPHS"
echo "$GRAPHS" | grep -q '"version": *1' || fail "fresh graph should be at version 1: $GRAPHS"

STORE_BODY='{"graph":"smoke","algorithm":"cc","timeout_ms":30000}'
STORE_FIRST=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$STORE_BODY") || fail "stored-graph run failed"
echo "$STORE_FIRST" | grep -q 'store(name=smoke,version=1)' || fail "fingerprint missing snapshot ID: $STORE_FIRST"
STORE_SECOND=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$STORE_BODY") || fail "stored-graph rerun failed"
echo "$STORE_SECOND" | grep -q '"result_cache": *"hit"' || fail "identical stored-graph rerun should hit: $STORE_SECOND"

EDGES=$(curl -sf -X POST "http://$ADDR/v1/graphs/smoke/edges" -d '{"edges":[[0,4000]]}') || fail "edge batch failed"
echo "$EDGES" | grep -q '"version": *2' || fail "edge batch should bump to version 2: $EDGES"
echo "$EDGES" | grep -q '"added": *2' || fail "symmetric insert should add 2 directed edges: $EDGES"

STORE_AFTER=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$STORE_BODY") || fail "post-update run failed"
echo "$STORE_AFTER" | grep -q '"result_cache": *"miss"' || fail "run after edge update must be a result-cache miss: $STORE_AFTER"
echo "$STORE_AFTER" | grep -q 'store(name=smoke,version=2)' || fail "post-update fingerprint missing version 2: $STORE_AFTER"

# Sharded execution: the same stored-graph connectivity run split across 4
# shards must return the unsharded answer with a distinct fingerprint (a
# fresh result-cache miss), the identical sharded request must hit, a
# different shard count must miss again under yet another fingerprint, and
# the resident coordinator must surface per-shard stats on /healthz.
# (These checks use herestrings, not echo|grep pipelines: grep -q exits at
# the first match, and under pipefail a still-writing echo would turn that
# early exit into a spurious SIGPIPE failure on these larger responses.)
SHARD_BODY='{"graph":"smoke","algorithm":"cc","shards":"4","timeout_ms":30000}'
SHARD_FIRST=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$SHARD_BODY") || fail "sharded run failed"
grep -q '"result_cache": *"miss"' <<<"$SHARD_FIRST" || fail "first sharded run should miss: $SHARD_FIRST"
grep -q '"sharded"' <<<"$SHARD_FIRST" || fail "sharded run carries no shard report: $SHARD_FIRST"
grep -q '"partition": *"shards=4,by=hash"' <<<"$SHARD_FIRST" || fail "shard report has wrong partition: $SHARD_FIRST"
UNSHARDED_SUMMARY=$(grep -o '"summary": *"[^"]*"' <<<"$STORE_AFTER")
grep -qF "$UNSHARDED_SUMMARY" <<<"$SHARD_FIRST" || fail "sharded answer differs from unsharded: want $UNSHARDED_SUMMARY in $SHARD_FIRST"
STORE_AFTER_KEY=$(grep -o '"key": *"[^"]*"' <<<"$STORE_AFTER")
if grep -qF "$STORE_AFTER_KEY" <<<"$SHARD_FIRST"; then
    fail "sharded fingerprint collides with unsharded: $SHARD_FIRST"
fi

SHARD_SECOND=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$SHARD_BODY") || fail "sharded rerun failed"
grep -q '"result_cache": *"hit"' <<<"$SHARD_SECOND" || fail "identical sharded rerun should hit: $SHARD_SECOND"

SHARD_K2=$(curl -sf -X POST "http://$ADDR/v1/run" -d '{"graph":"smoke","algorithm":"cc","shards":"2","timeout_ms":30000}') \
    || fail "k=2 sharded run failed"
grep -q '"result_cache": *"miss"' <<<"$SHARD_K2" || fail "new shard count should miss the result cache: $SHARD_K2"
grep -qF "$UNSHARDED_SUMMARY" <<<"$SHARD_K2" || fail "k=2 answer differs from unsharded: $SHARD_K2"

HEALTH_SHARDS=$(curl -sf "http://$ADDR/healthz") || fail "healthz after sharded runs failed"
grep -q '"max_shards": *8' <<<"$HEALTH_SHARDS" || fail "healthz missing shard cap: $HEALTH_SHARDS"
grep -q '"shard_coordinators"' <<<"$HEALTH_SHARDS" || fail "healthz missing resident coordinators: $HEALTH_SHARDS"
grep -q '"boundary_edges"' <<<"$HEALTH_SHARDS" || fail "healthz coordinator stats missing per-shard detail: $HEALTH_SHARDS"

# A shard count above the -shards cap is rejected before any work.
SHARD_OVER=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/run" \
    -d '{"graph":"smoke","algorithm":"cc","shards":"16"}')
[[ "$SHARD_OVER" == "400" ]] || fail "over-cap shard count returned $SHARD_OVER, want 400"

# Async jobs: submit a long run, observe it through the job API, and join a
# duplicate submission to the same job ID.
JOB_BODY='{"source":"rmat:16","transforms":["symmetrize"],"algorithm":"bicc","threads":2,"timeout_ms":60000,"tenant":"gold"}'
SUBMIT=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$JOB_BODY") || fail "job submit failed"
JOB_ID=$(echo "$SUBMIT" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"\(j-[0-9]*\)"/\1/')
[[ "$JOB_ID" == j-* ]] || fail "job submit returned no ID: $SUBMIT"

DUP=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$JOB_BODY") || fail "duplicate submit failed"
echo "$DUP" | grep -q "\"id\": *\"$JOB_ID\"" || fail "duplicate submission should join $JOB_ID: $DUP"

retry_until 60 "job $JOB_ID to finish" job_in_state "$JOB_ID" done
JOB_RESULT=$(curl -sf "http://$ADDR/v1/jobs/$JOB_ID/result") || fail "job result fetch failed"
echo "$JOB_RESULT" | grep -q '"summary"' || fail "job result has no summary: $JOB_RESULT"

# The completed job fed the result cache: the identical synchronous request
# must hit without executing.
JOB_SYNC=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$JOB_BODY") || fail "sync rerun of job request failed"
echo "$JOB_SYNC" | grep -q '"result_cache": *"hit"' || fail "sync rerun after job should hit the result cache: $JOB_SYNC"

# Canceling a job: submit a fresh long run and DELETE it; the job must land
# in failed with a cancellation error.
CANCEL_BODY='{"source":"rmat:17","algorithm":"bicc","threads":2,"timeout_ms":60000,"tenant":"bronze"}'
CANCEL_SUBMIT=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$CANCEL_BODY") || fail "cancel-target submit failed"
CANCEL_ID=$(echo "$CANCEL_SUBMIT" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"\(j-[0-9]*\)"/\1/')
curl -sf -X DELETE "http://$ADDR/v1/jobs/$CANCEL_ID" >/dev/null || fail "job cancel failed"
retry_until 15 "job $CANCEL_ID to be canceled" job_in_state "$CANCEL_ID" failed
curl -sf "http://$ADDR/v1/jobs/$CANCEL_ID" | grep -q 'canceled' || fail "canceled job should report a cancellation error"

# Cross-tenant fairness spot check: both tenants ran, and the configured
# weights are live in the limiter (gold=3 surfaces in /healthz once gold
# holds queued or admitted work; here we assert the weight config parsed by
# checking the jobs both tenants submitted are attributed to them).
JOBS_GOLD=$(curl -sf "http://$ADDR/v1/jobs?tenant=gold") || fail "job list failed"
echo "$JOBS_GOLD" | grep -q "\"id\": *\"$JOB_ID\"" || fail "gold's job missing from its tenant listing: $JOBS_GOLD"
if echo "$JOBS_GOLD" | grep -q "\"id\": *\"$CANCEL_ID\""; then
    fail "bronze's job leaked into gold's listing: $JOBS_GOLD"
fi
HEALTH_JOBS=$(curl -sf "http://$ADDR/healthz") || fail "healthz after jobs failed"
echo "$HEALTH_JOBS" | grep -q '"submitted": *2' || fail "healthz should count 2 submissions: $HEALTH_JOBS"
echo "$HEALTH_JOBS" | grep -q '"joined": *1' || fail "healthz should count 1 join: $HEALTH_JOBS"

# Crash safety: SIGKILL the daemon (no graceful shutdown, no final flush)
# and restart it over the same data directory. The stored graph must
# recover to its pre-crash version with an identical fingerprint — the
# rerun is a result-cache miss (caches are process-local) that recomputes
# the exact pre-crash answer.
STORE_KEY=$(echo "$STORE_AFTER" | grep -o '"key": *"[^"]*"')
STORE_SUMMARY=$(echo "$STORE_AFTER" | grep -o '"summary": *"[^"]*"')
[[ -n "$STORE_KEY" && -n "$STORE_SUMMARY" ]] || fail "pre-crash run carries no key/summary: $STORE_AFTER"

kill -9 "$SERVER_PID" 2>/dev/null || fail "SIGKILL failed"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

"$BIN" "${SERVE_FLAGS[@]}" >>"$LOG" 2>&1 &
SERVER_PID=$!
retry_until 10 "the restarted listener" curl -sf "http://$ADDR/healthz"

HEALTH_RESTART=$(curl -sf "http://$ADDR/healthz") || fail "healthz after restart failed"
echo "$HEALTH_RESTART" | grep -q '"persistent": *true' || fail "restarted healthz should report persistence: $HEALTH_RESTART"
echo "$HEALTH_RESTART" | grep -q '"durable_version": *2' || fail "smoke graph should be durable at version 2: $HEALTH_RESTART"

GRAPHS_RESTART=$(curl -sf "http://$ADDR/v1/graphs") || fail "/v1/graphs after restart failed"
echo "$GRAPHS_RESTART" | grep -q '"name": *"smoke"' || fail "recovered listing is missing smoke: $GRAPHS_RESTART"
echo "$GRAPHS_RESTART" | grep -q '"version": *2' || fail "smoke should recover at version 2: $GRAPHS_RESTART"

STORE_RECOVERED=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$STORE_BODY") || fail "post-restart run failed"
echo "$STORE_RECOVERED" | grep -q '"result_cache": *"miss"' || fail "post-restart run should miss the fresh cache: $STORE_RECOVERED"
echo "$STORE_RECOVERED" | grep -qF "$STORE_KEY" || fail "post-restart fingerprint differs: want $STORE_KEY in $STORE_RECOVERED"
echo "$STORE_RECOVERED" | grep -qF "$STORE_SUMMARY" || fail "post-restart answer differs: want $STORE_SUMMARY in $STORE_RECOVERED"

echo "smoke-serve: OK ($(echo "$FIRST" | grep -o '"summary": *"[^"]*"'))"

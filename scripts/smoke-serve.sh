#!/usr/bin/env bash
# Smoke test for cmd/gbbs-serve: boot the daemon, probe /healthz, run one
# declarative request twice, and assert the second is served from the
# deterministic result cache (observable through the response's
# result_cache field and the /v1/cache counters), with bad parameters
# rejected as 400. Used by `make smoke-serve` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18099}"
TMPDIR_SMOKE="$(mktemp -d)"
BIN="$TMPDIR_SMOKE/gbbs-serve"
LOG="$TMPDIR_SMOKE/serve.log"

cleanup() {
    if [[ -n "${SERVER_PID:-}" ]]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMPDIR_SMOKE"
}
trap cleanup EXIT

fail() {
    echo "smoke-serve: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

go build -o "$BIN" ./cmd/gbbs-serve

"$BIN" -addr "$ADDR" -threads 4 -cache-mb 256 -timeout 60s >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the listener.
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

HEALTH=$(curl -sf "http://$ADDR/healthz") || fail "healthz unreachable"
echo "$HEALTH" | grep -q '"status": *"ok"' || fail "healthz not ok: $HEALTH"

BODY='{"source":"rmat:14","transforms":["symmetrize"],"algorithm":"bfs","threads":2,"timeout_ms":30000}'

FIRST=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$BODY") || fail "first /v1/run failed"
echo "$FIRST" | grep -q '"summary"' || fail "first run has no summary: $FIRST"
echo "$FIRST" | grep -q '"cache": *"miss"' || fail "first run should be a graph-cache miss: $FIRST"
echo "$FIRST" | grep -q '"result_cache": *"miss"' || fail "first run should be a result-cache miss: $FIRST"

# The identical request is answered from the result cache: no build, no
# execution.
SECOND=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$BODY") || fail "second /v1/run failed"
echo "$SECOND" | grep -q '"result_cache": *"hit"' || fail "second identical run should hit the result cache: $SECOND"
echo "$SECOND" | grep -q '"cache": *"hit"' || fail "second identical run should not rebuild: $SECOND"

CACHE=$(curl -sf "http://$ADDR/v1/cache") || fail "/v1/cache failed"
GRAPH_SECTION=$(echo "$CACHE" | sed -n '/"graph":/,/"results":/p')
RESULT_SECTION=$(echo "$CACHE" | sed -n '/"results":/,$p')
echo "$GRAPH_SECTION" | grep -q '"misses": *1' || fail "graph cache should record 1 miss: $CACHE"
echo "$RESULT_SECTION" | grep -q '"misses": *1' || fail "result cache should record 1 miss: $CACHE"
echo "$RESULT_SECTION" | grep -q '"hits": *1' || fail "result cache should record 1 hit: $CACHE"

# Schema validation: an unknown parameter is rejected before any work.
BAD_STATUS=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/run" \
    -d '{"source":"rmat:14","transforms":["symmetrize"],"algorithm":"bfs","opts":{"bogus":1}}')
[[ "$BAD_STATUS" == "400" ]] || fail "unknown parameter returned $BAD_STATUS, want 400"

ALGOS=$(curl -sf "http://$ADDR/v1/algorithms") || fail "/v1/algorithms failed"
echo "$ALGOS" | grep -q '"name": *"bfs"' || fail "algorithm listing is missing bfs: $ALGOS"
echo "$ALGOS" | grep -q '"name": *"beta"' || fail "algorithm listing is missing parameter schemas: $ALGOS"

# Versioned graph store: create a deterministic graph, run against it by
# name, POST an edge batch (version bump), and assert the rerun is a
# result-cache miss whose fingerprint embeds the new version — an update can
# never serve a stale cached result.
CREATE_STATUS=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "http://$ADDR/v1/graphs/smoke" \
    -d '{"source":"grid:64","transforms":["symmetrize"]}')
[[ "$CREATE_STATUS" == "201" ]] || fail "graph create returned $CREATE_STATUS, want 201"

GRAPHS=$(curl -sf "http://$ADDR/v1/graphs") || fail "/v1/graphs failed"
echo "$GRAPHS" | grep -q '"name": *"smoke"' || fail "graph listing is missing smoke: $GRAPHS"
echo "$GRAPHS" | grep -q '"version": *1' || fail "fresh graph should be at version 1: $GRAPHS"

STORE_BODY='{"graph":"smoke","algorithm":"cc","timeout_ms":30000}'
STORE_FIRST=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$STORE_BODY") || fail "stored-graph run failed"
echo "$STORE_FIRST" | grep -q 'store(name=smoke,version=1)' || fail "fingerprint missing snapshot ID: $STORE_FIRST"
STORE_SECOND=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$STORE_BODY") || fail "stored-graph rerun failed"
echo "$STORE_SECOND" | grep -q '"result_cache": *"hit"' || fail "identical stored-graph rerun should hit: $STORE_SECOND"

EDGES=$(curl -sf -X POST "http://$ADDR/v1/graphs/smoke/edges" -d '{"edges":[[0,4000]]}') || fail "edge batch failed"
echo "$EDGES" | grep -q '"version": *2' || fail "edge batch should bump to version 2: $EDGES"
echo "$EDGES" | grep -q '"added": *2' || fail "symmetric insert should add 2 directed edges: $EDGES"

STORE_AFTER=$(curl -sf -X POST "http://$ADDR/v1/run" -d "$STORE_BODY") || fail "post-update run failed"
echo "$STORE_AFTER" | grep -q '"result_cache": *"miss"' || fail "run after edge update must be a result-cache miss: $STORE_AFTER"
echo "$STORE_AFTER" | grep -q 'store(name=smoke,version=2)' || fail "post-update fingerprint missing version 2: $STORE_AFTER"

echo "smoke-serve: OK ($(echo "$FIRST" | grep -o '"summary": *"[^"]*"'))"
